//! `dnc serve` — drive the durable churn engine from a request script
//! or a TCP listener.
//!
//! Both modes speak the same line protocol (`#` comments), one request
//! per line:
//!
//! ```text
//! admit <name> route <server>... bucket <σ> <ρ> [bucket ...]
//!       [peak <r>] [prio <n>] deadline <d>
//! release <name>
//! query [<name>]
//! ```
//!
//! `admit` lines share the `.dnc` flow grammar (same keywords, server
//! *names* resolved against the network file).
//!
//! **Scripted mode** (`--script`): all requests are fed through the
//! engine's bounded shed queue first — so overload behavior is
//! observable with scripts longer than `--queue` — then drained in FIFO
//! order, one answer line per request.
//!
//! **Socket mode** (`--listen <addr>`): many concurrent clients send
//! the same request lines over TCP; replies are one line per request,
//! in each connection's request order. Committed ops are *group
//! committed* — up to `--batch` ops share one journal record and one
//! fsync — and acknowledged only after that fsync. A `shutdown` line
//! from any client drains the server: it stops accepting, flushes and
//! fsyncs the remaining batch, and exits 0.
//!
//! With `--journal <path>`, committed operations are written ahead of
//! acknowledgment; re-running `dnc serve` against an existing journal
//! first **recovers** the committed state (truncating any torn tail)
//! and then applies the script on top (or serves on top of it).

use crate::commands::CliError;
use crate::parse::{self, FlowDecl, ParseError};
use dnc_core::admission::Deadline;
use dnc_net::{Network, ServerId};
use dnc_service::server::{self, ServerConfig};
use dnc_service::{AdmitRequest, ChurnEngine, EngineConfig, Request, Response};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Options for one `dnc serve` run.
pub struct ServeOptions {
    /// The `.dnc` network file (base topology + pre-existing flows).
    pub network: String,
    /// The request script (`None` only with `listen`).
    pub script: Option<String>,
    /// Write-ahead journal path (`None` = volatile engine).
    pub journal: Option<String>,
    /// Bound on the pending-request queue.
    pub queue: usize,
    /// Analysis worker threads per certification (1 = sequential).
    pub workers: usize,
    /// Socket mode: address to listen on (e.g. `127.0.0.1:7000`).
    pub listen: Option<String>,
    /// Socket mode: concurrent connection cap.
    pub max_conns: usize,
    /// Socket mode: max ops per group commit (one fsync each).
    pub batch: usize,
    /// Socket mode: drain budget in seconds after `shutdown`.
    pub drain_timeout: u64,
    /// Snapshot-and-rotate the journal every N committed ops
    /// (`None` = never compact).
    pub snapshot_every: Option<u64>,
}

/// Parse one non-empty, comment-stripped request line (shared by the
/// script reader and the socket decoder).
pub fn parse_request_line(
    line: &str,
    line_no: usize,
    names: &HashMap<String, ServerId>,
) -> Result<Request, ParseError> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    let bad = |m: String| ParseError {
        line: line_no,
        message: m,
    };
    match toks.first().copied() {
        Some("admit") => {
            let decl: FlowDecl = parse::parse_flow(&toks, line_no)?;
            if decl.reserve.is_some() || decl.local_deadline.is_some() {
                return Err(bad(
                    "admit does not take `reserve`/`ldl` (set them in the network file)".into(),
                ));
            }
            let Some(deadline) = decl.deadline else {
                return Err(bad(format!(
                    "admit {:?} needs a `deadline <d>` to certify",
                    decl.name
                )));
            };
            let route = decl
                .route
                .iter()
                .map(|n| {
                    names
                        .get(n)
                        .copied()
                        .ok_or_else(|| bad(format!("unknown server {n:?}")))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Request::Admit(AdmitRequest {
                name: decl.name,
                route,
                buckets: decl.buckets,
                peak: decl.peak,
                priority: decl.priority,
                deadline,
            }))
        }
        Some("release") => match (toks.get(1), toks.len()) {
            (Some(name), 2) => Ok(Request::Release {
                name: (*name).to_string(),
            }),
            _ => Err(bad("usage: release <name>".into())),
        },
        Some("query") => match toks.len() {
            1 => Ok(Request::Query { name: None }),
            2 => Ok(Request::Query {
                name: toks.get(1).map(|s| (*s).to_string()),
            }),
            _ => Err(bad("usage: query [<name>]".into())),
        },
        other => Err(bad(format!(
            "unknown request {other:?} (expected admit, release, or query)"
        ))),
    }
}

/// Parse the script into requests, resolving server names via `names`.
fn parse_script(text: &str, names: &HashMap<String, ServerId>) -> Result<Vec<Request>, ParseError> {
    let mut requests = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        requests.push(parse_request_line(line, idx + 1, names)?);
    }
    Ok(requests)
}

/// One reply line (no trailing newline) per response — the socket
/// protocol's framing, and the first line of the scripted rendering.
fn render_line(r: &Response) -> String {
    match r {
        Response::Admitted {
            name,
            bound,
            deadline,
            tier,
            retried,
            ..
        } => format!(
            "ADMIT   {name}: certified, bound {bound} <= deadline {deadline} (tier {tier}{})",
            if *retried { ", after budget retry" } else { "" }
        ),
        Response::Rejected { name, reason } => format!("REJECT  {name}: {reason}"),
        Response::Released { name } => format!("RELEASE {name}: ok, remaining set re-certified"),
        Response::ReleaseFailed { name, reason } => format!("RELEASE {name}: refused: {reason}"),
        Response::Queried { entries } => {
            let mut s = format!("QUERY   {} admitted", entries.len());
            for e in entries {
                let _ = write!(s, " {}", e.name);
            }
            s
        }
        Response::Shed {
            name,
            reason,
            retry_after,
        } => format!("SHED    {name}: {reason}; retry after {retry_after} tick(s)"),
    }
}

fn render(out: &mut String, r: &Response) {
    match r {
        Response::Queried { entries } => {
            let _ = writeln!(out, "QUERY   {} admitted", entries.len());
            for e in entries {
                let _ = writeln!(
                    out,
                    "        {} ({}) deadline {}",
                    e.name, e.flow, e.deadline
                );
            }
        }
        other => {
            let _ = writeln!(out, "{}", render_line(other));
        }
    }
}

/// Build the engine (recovering the journal when given), appending any
/// recovery lines to `out`.
fn open_engine(
    opts: &ServeOptions,
    built_net: Network,
    base_deadlines: Vec<Deadline>,
    out: &mut String,
) -> Result<ChurnEngine, CliError> {
    let usage = |m: String| CliError {
        message: m,
        code: crate::commands::EXIT_USAGE,
    };
    let config = EngineConfig {
        queue_capacity: opts.queue,
        workers: opts.workers.max(1),
        snapshot_every: opts.snapshot_every,
        ..EngineConfig::default()
    };
    match &opts.journal {
        Some(journal) => {
            let (engine, info) = ChurnEngine::open(
                built_net,
                base_deadlines,
                config,
                std::path::Path::new(journal),
            )
            .map_err(|e| usage(format!("{journal}: {e}")))?;
            if let Some((defect, total)) = &info.tail {
                let _ = writeln!(
                    out,
                    "recovery: {defect} at byte {} of {total}; torn tail truncated",
                    info.valid_len
                );
            }
            if let Some((gen, seq)) = info.snapshot {
                let _ = writeln!(
                    out,
                    "recovery: snapshot generation {gen} restored through seq {seq}{}; \
                     journal tail {} byte(s), {} op(s) replayed since snapshot",
                    if info.snapshots_skipped > 0 {
                        format!(
                            " ({} torn/stale snapshot(s) skipped)",
                            info.snapshots_skipped
                        )
                    } else {
                        String::new()
                    },
                    info.valid_len,
                    info.ops_replayed
                );
            }
            if info.ops_replayed > 0 {
                let _ = writeln!(
                    out,
                    "recovery: replayed {} committed operation(s), {} connection(s) live",
                    info.ops_replayed,
                    engine.admitted().count()
                );
            }
            Ok(engine)
        }
        None => ChurnEngine::new(built_net, base_deadlines, config)
            .map_err(|e| usage(format!("{}: {e}", opts.network))),
    }
}

/// Run one serve session — scripted, or listening on a socket.
/// Rejections and sheds are normal service answers (exit 0); only
/// usage/script errors and journal failures are [`CliError`]s.
pub fn serve(
    opts: &ServeOptions,
    built_net: Network,
    base_deadlines: Vec<Deadline>,
) -> Result<String, CliError> {
    let usage = |m: String| CliError {
        message: m,
        code: crate::commands::EXIT_USAGE,
    };
    let names: HashMap<String, ServerId> = built_net
        .servers()
        .iter()
        .enumerate()
        .map(|(i, s)| (s.name.clone(), ServerId(i)))
        .collect();

    if opts.listen.is_some() {
        return serve_listen(opts, built_net, base_deadlines, names);
    }

    let script = opts
        .script
        .as_ref()
        .ok_or_else(|| usage("serve needs --script <requests> (or --listen <addr>)".into()))?;
    let script_text =
        std::fs::read_to_string(script).map_err(|e| usage(format!("cannot read {script}: {e}")))?;
    let requests =
        parse_script(&script_text, &names).map_err(|e| usage(format!("{script}: {e}")))?;

    let mut out = String::new();
    let mut engine = open_engine(opts, built_net, base_deadlines, &mut out)?;

    // Enqueue everything first so the shed policy sees the whole burst,
    // then drain FIFO.
    for req in requests {
        for shed in engine.submit(req) {
            render(&mut out, &shed);
        }
    }
    let answers = engine
        .drain()
        .map_err(|e| usage(format!("journal failure mid-drain: {e}")))?;
    for r in &answers {
        render(&mut out, r);
    }

    let stats = engine.stats();
    let _ = writeln!(
        out,
        "done: {} commit(s), {} rollback(s), {} shed(s), {} budget retr{}, {} connection(s) admitted",
        stats.commits,
        stats.rollbacks,
        stats.sheds,
        stats.retries,
        if stats.retries == 1 { "y" } else { "ies" },
        engine.admitted().count()
    );
    Ok(out)
}

/// Socket mode: serve the line protocol to concurrent TCP clients with
/// group-committed durability, then report the drained session.
fn serve_listen(
    opts: &ServeOptions,
    built_net: Network,
    base_deadlines: Vec<Deadline>,
    names: HashMap<String, ServerId>,
) -> Result<String, CliError> {
    let usage = |m: String| CliError {
        message: m,
        code: crate::commands::EXIT_USAGE,
    };
    let addr = opts.listen.as_deref().unwrap_or_default();
    let mut out = String::new();
    let engine = open_engine(opts, built_net, base_deadlines, &mut out)?;
    let listener = std::net::TcpListener::bind(addr)
        .map_err(|e| usage(format!("cannot listen on {addr}: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| usage(format!("{addr}: {e}")))?;

    let cfg = ServerConfig {
        batch: opts.batch.max(1),
        max_conns: opts.max_conns.max(1),
        queue_capacity: opts.queue,
        drain_timeout: std::time::Duration::from_secs(opts.drain_timeout),
        ..ServerConfig::default()
    };

    // Recovery lines and the readiness banner must be visible *before*
    // the blocking serve loop: clients (and the CI smoke) wait on them.
    print!("{out}");
    println!(
        "listening on {local} (batch {}, queue {}, max {} conns); send `shutdown` to drain",
        cfg.batch, cfg.queue_capacity, cfg.max_conns
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    out.clear();

    let decode = move |line: &str| -> Result<Request, String> {
        parse_request_line(line, 0, &names).map_err(|e| format!("ERR     {}", e.message))
    };
    let (engine, report) = server::run(
        listener,
        engine,
        cfg,
        Arc::new(decode),
        Arc::new(render_line),
        Arc::new(AtomicBool::new(false)),
    )
    .map_err(|e| usage(format!("serve --listen: {e}")))?;

    let stats = report.stats;
    let _ = writeln!(
        out,
        "drained: {}; {} connection(s) ({} rejected), {} request(s), {} protocol error(s)",
        if report.drained_clean {
            "clean"
        } else {
            "timed out with stragglers"
        },
        report.connections,
        report.rejected_connections,
        report.requests,
        report.protocol_errors,
    );
    let _ = writeln!(
        out,
        "done: {} commit(s) in {} group commit(s) ({} op(s) batched), {} rollback(s), {} shed(s), {} connection(s) admitted",
        stats.commits,
        stats.group_commits,
        stats.batched_ops,
        stats.rollbacks,
        report.sheds,
        engine.admitted().count()
    );
    Ok(out)
}
