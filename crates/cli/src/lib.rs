#![warn(missing_docs)]

//! # dnc-cli — the `dnc` command
//!
//! A front end over the whole workspace: describe a network in a small
//! text format, then analyze it, size its buffers, check admission, or
//! simulate it.
//!
//! ```sh
//! dnc check    network.dnc              # structure, utilizations, pairing
//! dnc analyze  network.dnc --algo all   # delay bounds per connection
//! dnc backlog  network.dnc              # buffer sizing per server
//! dnc simulate network.dnc --ticks 8192 # adversarial simulation vs bounds
//! ```
//!
//! ## The `.dnc` format
//!
//! Line-oriented; `#` starts a comment. Rationals are `3`, `1/4`, `0.25`.
//!
//! ```text
//! # servers: name, service rate (cells/tick), discipline
//! # (fifo | sp = static priority | gps | edf)
//! server L0 rate 1 fifo
//! server L1 rate 1 fifo
//! server core rate 2 sp
//! server fair rate 2 gps
//! server dl   rate 1 edf
//!
//! # flows: route through declared servers, one or more token buckets,
//! # optional peak cap, priority, GPS reservation (`reserve`), EDF local
//! # deadline (`ldl`), and end-to-end deadline
//! flow conn0 route L0 L1 core bucket 1 1/4 peak 1 prio 1 deadline 20
//! flow fairf route L0 fair bucket 2 1/8 reserve 1/2
//! flow edff  route L0 dl   bucket 2 1/8 ldl 6 deadline 10
//! flow cross route L0 bucket 2 1/8
//! ```
//!
//! [`parse::parse_spec`] turns the text into a [`parse::NetworkSpec`];
//! [`commands::run`] executes a command line and returns the report text
//! (the `dnc` binary just prints it).

pub mod commands;
pub mod parse;
pub mod serve;
