//! End-to-end test of `dnc bench`: a synthetic regression fixture in
//! the trajectory must trip `--gate` with the dedicated exit code, and
//! every side artifact (appended record, raw-metrics archive,
//! dashboard) must land where the flags say.
//!
//! The fixture seeds `BENCH_throughput.json` with prior runs claiming
//! an absurd `throughput.speedup` (1e12, higher-is-better), so the
//! real quick run is guaranteed to fall below the noise band on any
//! machine — the regression verdict is deterministic even though the
//! measured timings are not.

use dnc_bench::trajectory::{append_record, BenchRecord};
use dnc_cli::commands::{run, EXIT_REGRESSION};
use dnc_telemetry::schema;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dnc_bench_cli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn prior(speedup: f64) -> BenchRecord {
    BenchRecord {
        timestamp: "2026-08-07T00:00:00Z".to_string(),
        git_sha: "fixture00000".to_string(),
        toolchain: "rustc fixture".to_string(),
        knobs: BTreeMap::from([("profile".to_string(), "quick".to_string())]),
        metrics: BTreeMap::from([("throughput.speedup".to_string(), speedup)]),
        counters: BTreeMap::new(),
    }
}

fn args(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

fn read_lines(path: &Path) -> Vec<String> {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
        .lines()
        .map(str::to_string)
        .collect()
}

#[test]
fn bench_gate_trips_on_synthetic_regression_fixture() {
    let dir = scratch("gate");
    let bench_dir = dir.join("trajectories");
    let traj = bench_dir.join("BENCH_throughput.json");
    append_record(&traj, &prior(1.0e12)).expect("seed prior 1");
    append_record(&traj, &prior(1.0e12)).expect("seed prior 2");

    let out_dir = dir.join("results");
    let dash = dir.join("dashboard");
    let err = run(&args(&[
        "bench",
        "--quick",
        "--gate",
        "--bench-dir",
        bench_dir.to_str().unwrap(),
        "--out-dir",
        out_dir.to_str().unwrap(),
        "--dashboard",
        dash.to_str().unwrap(),
    ]))
    .expect_err("a speedup baseline of 1e12 must trip the gate");
    assert_eq!(err.code, EXIT_REGRESSION, "dedicated gate exit code");
    assert!(
        err.message.contains("regression gate tripped"),
        "message explains the failure:\n{}",
        err.message
    );
    assert!(
        err.message.contains("throughput.speedup"),
        "diff table names the out-of-band metric:\n{}",
        err.message
    );

    // The run still appended its record (the trajectory is the log of
    // what happened, not of what passed) and the file stays schema-valid.
    assert_eq!(read_lines(&traj).len(), 3, "fixture priors + the new run");
    let text = std::fs::read_to_string(&traj).unwrap();
    schema::validate_bench(&text).expect("trajectory stays dnc-bench/v1 after append");
    let churn = std::fs::read_to_string(bench_dir.join("BENCH_churn.json")).unwrap();
    schema::validate_bench(&churn).expect("churn trajectory is dnc-bench/v1");

    // Raw metrics were archived under results/runs/<slug>/ and the
    // dashboard rendered despite the gate verdict.
    let runs: Vec<_> = std::fs::read_dir(out_dir.join("runs"))
        .expect("archive root exists")
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(runs.len(), 1, "one archive directory per run");
    for doc in ["throughput", "profile", "chaos", "churn"] {
        let path = runs[0].join(format!("metrics-{doc}.json"));
        let body = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("archived {}: {e}", path.display()));
        schema::validate_metrics(&body).expect("archived doc is dnc-metrics/v1");
    }
    let html = std::fs::read_to_string(dash.join("index.html")).expect("dashboard rendered");
    assert!(
        html.contains("banner bad"),
        "dashboard shows the regression"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_without_gate_reports_but_does_not_fail() {
    let dir = scratch("nogate");
    let bench_dir = dir.join("trajectories");
    append_record(&bench_dir.join("BENCH_throughput.json"), &prior(1.0e12)).expect("seed prior");

    // Same regressing fixture, no --gate: the run reports the verdict
    // in its text but exits clean.
    let out = run(&args(&[
        "bench",
        "--quick",
        "--bench-dir",
        bench_dir.to_str().unwrap(),
        "--out-dir",
        dir.join("results").to_str().unwrap(),
    ]))
    .expect("without --gate the verdict is advisory");
    assert!(out.contains("REGRESSED"), "verdict still reported:\n{out}");

    let _ = std::fs::remove_dir_all(&dir);
}
