//! Property tests for the `.dnc` format: serialize → parse round-trips
//! for arbitrary valid specs.

use dnc_cli::parse::{parse_spec, FlowDecl, NetworkSpec, ServerDecl};
use dnc_net::Discipline;
use dnc_num::Rat;
use proptest::prelude::*;

fn arb_name(prefix: &'static str) -> impl Strategy<Value = String> {
    (0u32..1000).prop_map(move |n| format!("{prefix}{n}"))
}

fn arb_rat_pos() -> impl Strategy<Value = Rat> {
    (1i128..100, 1i128..16).prop_map(|(n, d)| Rat::new(n, d))
}

fn arb_rat_nonneg() -> impl Strategy<Value = Rat> {
    (0i128..100, 1i128..16).prop_map(|(n, d)| Rat::new(n, d))
}

fn arb_spec() -> impl Strategy<Value = NetworkSpec> {
    let servers =
        proptest::collection::vec((arb_rat_pos(), proptest::bool::ANY), 1..5).prop_map(|v| {
            v.into_iter()
                .enumerate()
                .map(|(i, (rate, sp))| ServerDecl {
                    name: format!("s{i}"),
                    rate,
                    discipline: if sp {
                        Discipline::StaticPriority
                    } else {
                        Discipline::Fifo
                    },
                })
                .collect::<Vec<_>>()
        });
    (servers, arb_name("ignored"), 1usize..4)
        .prop_flat_map(|(servers, _, n_flows)| {
            let n_servers = servers.len();
            let flows = proptest::collection::vec(
                (
                    proptest::collection::vec((arb_rat_nonneg(), arb_rat_nonneg()), 1..3),
                    proptest::option::of(arb_rat_pos()),
                    0u8..4,
                    proptest::option::of(arb_rat_pos()),
                    proptest::sample::subsequence(
                        (0..n_servers).collect::<Vec<_>>(),
                        1..=n_servers,
                    ),
                ),
                n_flows..=n_flows,
            )
            .prop_map(move |fv| {
                fv.into_iter()
                    .enumerate()
                    .map(|(i, (buckets, peak, prio, deadline, route))| FlowDecl {
                        name: format!("f{i}"),
                        route: route.iter().map(|&j| format!("s{j}")).collect(),
                        buckets,
                        peak,
                        priority: prio,
                        reserve: deadline,    // reuse the optional-rat generator
                        local_deadline: peak, // likewise
                        deadline,
                    })
                    .collect::<Vec<_>>()
            });
            (proptest::strategy::Just(servers), flows)
        })
        .prop_map(|(servers, flows)| NetworkSpec { servers, flows })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn to_dnc_round_trips(spec in arb_spec()) {
        let text = spec.to_dnc();
        let parsed = parse_spec(&text).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{text}"));
        prop_assert_eq!(spec.servers.len(), parsed.servers.len());
        prop_assert_eq!(spec.flows.len(), parsed.flows.len());
        for (a, b) in spec.servers.iter().zip(parsed.servers.iter()) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.rate, b.rate);
            prop_assert_eq!(a.discipline, b.discipline);
        }
        for (a, b) in spec.flows.iter().zip(parsed.flows.iter()) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(&a.route, &b.route);
            prop_assert_eq!(&a.buckets, &b.buckets);
            prop_assert_eq!(a.peak, b.peak);
            prop_assert_eq!(a.priority, b.priority);
            prop_assert_eq!(a.reserve, b.reserve);
            prop_assert_eq!(a.local_deadline, b.local_deadline);
            prop_assert_eq!(a.deadline, b.deadline);
        }
    }

    #[test]
    fn built_networks_match_after_round_trip(spec in arb_spec()) {
        let text = spec.to_dnc();
        let parsed = parse_spec(&text).unwrap();
        let a = spec.build();
        let b = parsed.build();
        prop_assert_eq!(a.is_ok(), b.is_ok());
        if let (Ok(a), Ok(b)) = (a, b) {
            prop_assert_eq!(a.net.servers().len(), b.net.servers().len());
            prop_assert_eq!(a.net.flows().len(), b.net.flows().len());
            for (fa, fb) in a.net.flows().iter().zip(b.net.flows().iter()) {
                prop_assert_eq!(fa.spec.arrival_curve(), fb.spec.arrival_curve());
                prop_assert_eq!(&fa.route, &fb.route);
            }
        }
    }
}
