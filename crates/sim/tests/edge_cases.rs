//! Edge-case tests for the simulator: degenerate configurations,
//! fractional rates, starvation patterns, tracing.

use dnc_net::builders::{chain, tandem, TandemOptions};
use dnc_net::{Discipline, Flow, Network, Server};
use dnc_num::{int, rat, Rat};
use dnc_sim::{all_greedy, simulate, SimConfig, Simulation};
use dnc_traffic::{SourceModel, TrafficSpec};

fn cfg(ticks: u64) -> SimConfig {
    SimConfig {
        ticks,
        ..SimConfig::default()
    }
}

#[test]
fn zero_tick_run() {
    let (net, _, _) = chain(1, &[TrafficSpec::paper_source(int(1), rat(1, 4))]);
    let r = simulate(&net, &all_greedy(&net), &cfg(0));
    assert_eq!(r.flows[0].emitted, 0);
    assert_eq!(r.flows[0].delivered, 0);
}

#[test]
fn fractional_rate_server_long_run_throughput() {
    // A 2/3-rate server fed at 1/2: long-run delivery tracks emission.
    let mut net = Network::new();
    let s = net.add_server(Server {
        name: "frac".into(),
        rate: rat(2, 3),
        discipline: Discipline::Fifo,
    });
    net.add_flow(Flow {
        name: "f".into(),
        spec: TrafficSpec::token_bucket(int(2), rat(1, 2)),
        route: vec![s],
        priority: 0,
    })
    .unwrap();
    let r = simulate(&net, &all_greedy(&net), &cfg(3000));
    let f = &r.flows[0];
    assert!(f.delivered > 0);
    assert!(f.emitted - f.delivered < 16, "backlog bounded");
    // Long-run service rate ~1/2 (input-limited), well under 2/3.
    assert!(f.delivered as f64 >= 0.45 * 3000.0);
}

#[test]
fn source_rate_zero_never_emits() {
    let (net, _, _) = chain(1, &[TrafficSpec::token_bucket(int(0), Rat::ZERO)]);
    let r = simulate(&net, &all_greedy(&net), &cfg(256));
    assert_eq!(r.flows[0].emitted, 0);
}

#[test]
fn step_by_step_matches_run() {
    let t = tandem(2, int(1), rat(1, 8), TandemOptions::default());
    let models = all_greedy(&t.net);
    let c = cfg(200);
    let by_run = simulate(&t.net, &models, &c);
    let mut sim = Simulation::new(&t.net, &models, &c);
    for _ in 0..200 {
        sim.step();
    }
    let by_step = sim.run(0);
    for (a, b) in by_run.flows.iter().zip(by_step.flows.iter()) {
        assert_eq!(a.emitted, b.emitted);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.max_delay, b.max_delay);
    }
}

#[test]
fn sp_starvation_of_lowest_priority() {
    // High-priority saturates the link (util 3/4): priority 7 still
    // drains, but slowly and with much larger delays.
    let mut net = Network::new();
    let s = net.add_server(Server {
        name: "sp".into(),
        rate: Rat::ONE,
        discipline: Discipline::StaticPriority,
    });
    let hi = net
        .add_flow(Flow {
            name: "hi".into(),
            spec: TrafficSpec::token_bucket(int(4), rat(3, 4)),
            route: vec![s],
            priority: 0,
        })
        .unwrap();
    let lo = net
        .add_flow(Flow {
            name: "lo".into(),
            spec: TrafficSpec::token_bucket(int(4), rat(1, 8)),
            route: vec![s],
            priority: 7,
        })
        .unwrap();
    let r = simulate(&net, &all_greedy(&net), &cfg(4096));
    assert!(
        r.flows[lo.0].delivered > 0,
        "no total starvation under load < 1"
    );
    assert!(r.flows[lo.0].max_delay > r.flows[hi.0].max_delay * 2);
}

#[test]
fn trace_is_cumulative_and_consistent() {
    let t = tandem(2, int(2), rat(1, 8), TandemOptions::default());
    let c = SimConfig {
        ticks: 300,
        trace_server: Some(t.middle[0].0),
        ..SimConfig::default()
    };
    let r = simulate(&t.net, &all_greedy(&t.net), &c);
    let trace = r.trace.expect("requested trace");
    assert_eq!(trace.arrivals.len(), 300);
    assert_eq!(trace.departures.len(), 300);
    for w in trace.arrivals.windows(2) {
        assert!(w[0] <= w[1], "arrivals cumulative");
    }
    for w in trace.departures.windows(2) {
        assert!(w[0] <= w[1], "departures cumulative");
    }
    for (a, d) in trace.arrivals.iter().zip(trace.departures.iter()) {
        assert!(d <= a, "causality");
    }
    // Forwarded counter agrees with the trace.
    assert_eq!(
        r.servers[t.middle[0].0].forwarded,
        *trace.departures.last().unwrap()
    );
}

#[test]
fn no_trace_when_not_requested() {
    let (net, _, _) = chain(1, &[TrafficSpec::paper_source(int(1), rat(1, 4))]);
    let r = simulate(&net, &all_greedy(&net), &cfg(64));
    assert!(r.trace.is_none());
}

#[test]
fn periodic_source_starves_when_bucket_too_small() {
    // Desired burst 5 but bucket depth 2: the regulator clips.
    let (net, flows, _) = chain(1, &[TrafficSpec::token_bucket(int(2), rat(1, 16))]);
    let models = vec![SourceModel::Periodic {
        period: 16,
        burst: 5,
        phase: 0,
    }];
    let r = simulate(&net, &models, &cfg(160));
    // Per period at most 2 + refill can go out; 10 periods emit ≤ ~30.
    assert!(r.flows[flows[0].0].emitted <= 30);
    assert!(r.flows[flows[0].0].emitted >= 10);
}

#[test]
fn busy_ticks_counted() {
    let t = tandem(1, int(4), rat(3, 16), TandemOptions::default());
    let r = simulate(&t.net, &all_greedy(&t.net), &cfg(1024));
    let st = &r.servers[t.middle[0].0];
    assert!(st.busy_ticks > 0);
    assert!(st.busy_ticks <= 1024);
    assert!(st.max_backlog >= 1);
}

#[test]
#[should_panic(expected = "one source model per flow")]
fn model_count_mismatch_panics() {
    let (net, _, _) = chain(1, &[TrafficSpec::paper_source(int(1), rat(1, 4))]);
    let _ = Simulation::new(&net, &[], &cfg(1));
}
