//! The synchronous tick engine.

use crate::fault::{FaultPlan, FaultStats, CROSS_FLOW};
use crate::stats::{FlowStats, ServerStats, SimReport};
use dnc_net::{Discipline, Network, ServerId};
use dnc_num::Rat;
use dnc_traffic::{CellSource, SourceModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Run parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// How many ticks to simulate.
    pub ticks: u64,
    /// RNG seed (only randomized source models consume it).
    pub seed: u64,
    /// Delay-histogram size per flow.
    pub histogram_buckets: usize,
    /// Record a per-tick cumulative arrival/departure trace of this
    /// server (`G_j`/`W_j` of the paper's Lemma 1).
    pub trace_server: Option<usize>,
    /// Restrict the trace to a single flow (by id). `None` = the whole
    /// aggregate.
    pub trace_flow: Option<usize>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            ticks: 4096,
            seed: 1,
            histogram_buckets: 256,
            trace_server: None,
            trace_flow: None,
        }
    }
}

/// One cell in flight.
#[derive(Clone, Copy, Debug)]
struct Cell {
    flow: u32,
    emitted: u64,
    /// Arrival tick at the server currently queueing the cell.
    arrived: u64,
    /// Index into the flow's route of the server this cell is queued at.
    hop: u32,
}

/// Per-server run state. FIFO uses a single queue; static priority one
/// queue per level; GPS one queue *per flow* with per-flow reserved-rate
/// credit (rate-guarantee semantics: each backlogged flow is served at
/// its reservation; spare capacity is not redistributed, which can only
/// increase delays — the conservative direction for bound validation).
enum ServerState {
    Shared {
        queues: Vec<VecDeque<Cell>>,
        credit: Rat,
        rate: Rat,
        priority_levels: bool,
    },
    Gps {
        /// One queue per flow id (lazily sized).
        queues: Vec<VecDeque<Cell>>,
        credit: Vec<Rat>,
        reserved: Vec<Rat>,
    },
    Edf {
        /// Min-heap keyed by (absolute deadline, arrival sequence).
        heap: BinaryHeap<Reverse<(u64, u64, EdfCell)>>,
        credit: Rat,
        rate: Rat,
        /// Per-flow local deadline (ticks), indexed by flow id.
        deadline: Vec<u64>,
        seq: u64,
    },
}

/// `Cell` wrapped for heap ordering (order only on the tuple key; the
/// payload fields participate but deterministically).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct EdfCell {
    flow: u32,
    emitted: u64,
    arrived: u64,
    hop: u32,
}

impl From<Cell> for EdfCell {
    fn from(c: Cell) -> EdfCell {
        EdfCell {
            flow: c.flow,
            emitted: c.emitted,
            arrived: c.arrived,
            hop: c.hop,
        }
    }
}

impl From<EdfCell> for Cell {
    fn from(c: EdfCell) -> Cell {
        Cell {
            flow: c.flow,
            emitted: c.emitted,
            arrived: c.arrived,
            hop: c.hop,
        }
    }
}

impl ServerState {
    fn backlog(&self) -> u64 {
        match self {
            ServerState::Shared { queues, .. } | ServerState::Gps { queues, .. } => {
                queues.iter().map(|q| q.len() as u64).sum()
            }
            ServerState::Edf { heap, .. } => heap.len() as u64,
        }
    }

    fn push(&mut self, cell: Cell, priority: u8) {
        match self {
            ServerState::Shared {
                queues,
                priority_levels,
                ..
            } => {
                let level = if *priority_levels {
                    priority as usize
                } else {
                    0
                };
                if level >= queues.len() {
                    queues.resize_with(level + 1, VecDeque::new);
                }
                queues[level].push_back(cell);
            }
            ServerState::Gps { queues, .. } => {
                queues[cell.flow as usize].push_back(cell);
            }
            ServerState::Edf {
                heap,
                deadline,
                seq,
                ..
            } => {
                let d = cell.arrived + deadline[cell.flow as usize];
                heap.push(Reverse((d, *seq, cell.into())));
                *seq += 1;
            }
        }
    }

    /// Advance one tick of service at `rate × scale` (faults degrade the
    /// scale below one; an outage is scale zero), returning the cells
    /// served.
    fn serve_tick(&mut self, scale: Rat) -> Vec<Cell> {
        let mut served = Vec::new();
        match self {
            ServerState::Shared {
                queues,
                credit,
                rate,
                ..
            } => {
                *credit += *rate * scale;
                if queues.iter().all(|q| q.is_empty()) {
                    *credit = Rat::ZERO;
                    return served;
                }
                while *credit >= Rat::ONE {
                    let Some(cell) = queues.iter_mut().find_map(|q| q.pop_front()) else {
                        break;
                    };
                    *credit -= Rat::ONE;
                    served.push(cell);
                }
            }
            ServerState::Gps {
                queues,
                credit,
                reserved,
            } => {
                for f in 0..queues.len() {
                    if queues[f].is_empty() {
                        credit[f] = Rat::ZERO;
                        continue;
                    }
                    credit[f] += reserved[f] * scale;
                    while credit[f] >= Rat::ONE {
                        let Some(cell) = queues[f].pop_front() else {
                            break;
                        };
                        credit[f] -= Rat::ONE;
                        served.push(cell);
                    }
                }
            }
            ServerState::Edf {
                heap, credit, rate, ..
            } => {
                *credit += *rate * scale;
                if heap.is_empty() {
                    *credit = Rat::ZERO;
                } else {
                    while *credit >= Rat::ONE {
                        let Some(Reverse((_, _, cell))) = heap.pop() else {
                            break;
                        };
                        *credit -= Rat::ONE;
                        served.push(cell.into());
                    }
                }
            }
        }
        served
    }
}

/// A fully-built simulation, stepped tick by tick.
pub struct Simulation<'a> {
    net: &'a Network,
    sources: Vec<CellSource>,
    servers: Vec<ServerState>,
    /// Topological server order (per-tick processing order).
    order: Vec<ServerId>,
    rng: StdRng,
    now: u64,
    flow_stats: Vec<FlowStats>,
    server_stats: Vec<ServerStats>,
    traced: Option<usize>,
    traced_flow: Option<usize>,
    trace: crate::stats::ServerTrace,
    trace_arrived: u64,
    trace_departed: u64,
    faults: FaultPlan,
    fault_stats: FaultStats,
}

impl<'a> Simulation<'a> {
    /// Build a simulation with one source model per flow (same order as
    /// `net.flows()`).
    ///
    /// # Panics
    /// Panics if `models.len() != net.flows().len()`.
    ///
    /// Feedforward networks process servers in topological order, giving
    /// uncontended cells same-tick cut-through. Cyclic networks fall back
    /// to server-id order: a cell crossing a "backward" edge simply waits
    /// for the next tick (still a conservative, valid sample path).
    pub fn new(net: &'a Network, models: &[SourceModel], cfg: &SimConfig) -> Simulation<'a> {
        Simulation::with_faults(net, models, cfg, FaultPlan::none())
    }

    /// Like [`Simulation::new`], with a deterministic [`FaultPlan`]
    /// applied while the run executes.
    ///
    /// # Panics
    /// Panics if `models.len() != net.flows().len()` or if the plan does
    /// not [validate](FaultPlan::validate) against `net`.
    pub fn with_faults(
        net: &'a Network,
        models: &[SourceModel],
        cfg: &SimConfig,
        faults: FaultPlan,
    ) -> Simulation<'a> {
        assert_eq!(
            models.len(),
            net.flows().len(),
            "one source model per flow required"
        );
        if let Err(e) = faults.validate(net) {
            panic!("invalid fault plan: {e}");
        }
        let order = net
            .topological_order()
            .unwrap_or_else(|_| (0..net.servers().len()).map(ServerId).collect());
        let sources = net
            .flows()
            .iter()
            .zip(models)
            .map(|(f, m)| CellSource::new(&f.spec, m.clone()))
            .collect();
        let n_flows = net.flows().len();
        let servers = net
            .servers()
            .iter()
            .enumerate()
            .map(|(i, s)| match s.discipline {
                Discipline::Fifo | Discipline::StaticPriority => ServerState::Shared {
                    queues: vec![VecDeque::new()],
                    credit: Rat::ZERO,
                    rate: s.rate,
                    priority_levels: s.discipline == Discipline::StaticPriority,
                },
                Discipline::Gps => ServerState::Gps {
                    queues: (0..n_flows).map(|_| VecDeque::new()).collect(),
                    credit: vec![Rat::ZERO; n_flows],
                    reserved: (0..n_flows)
                        .map(|f| net.reserved_rate(dnc_net::FlowId(f), ServerId(i)))
                        .collect(),
                },
                Discipline::Edf => ServerState::Edf {
                    heap: BinaryHeap::new(),
                    credit: Rat::ZERO,
                    rate: s.rate,
                    deadline: (0..n_flows)
                        .map(|f| {
                            net.local_deadline(dnc_net::FlowId(f), ServerId(i))
                                .map_or(u64::MAX / 4, |d| d.ceil().max(0) as u64)
                        })
                        .collect(),
                    seq: 0,
                },
            })
            .collect();
        Simulation {
            net,
            sources,
            servers,
            order,
            rng: StdRng::seed_from_u64(cfg.seed),
            now: 0,
            flow_stats: net
                .flows()
                .iter()
                .map(|_| FlowStats::new(cfg.histogram_buckets))
                .collect(),
            server_stats: vec![ServerStats::default(); net.servers().len()],
            traced: cfg.trace_server,
            traced_flow: cfg.trace_flow,
            trace: crate::stats::ServerTrace::default(),
            trace_arrived: 0,
            trace_departed: 0,
            faults,
            fault_stats: FaultStats::default(),
        }
    }

    /// Queue a cell at a server, keeping the trace counters current.
    fn enqueue(&mut self, sid: ServerId, cell: Cell, priority: u8) {
        if self.traced == Some(sid.0) && self.traced_flow.is_none_or(|f| f == cell.flow as usize) {
            self.trace_arrived += 1;
        }
        self.servers[sid.0].push(cell, priority);
    }

    /// Advance one tick.
    pub fn step(&mut self) {
        let now = self.now;

        // 1. Sources emit into the first hop of their route.
        for i in 0..self.sources.len() {
            let cells = self.sources[i].step(&mut self.rng);
            if cells == 0 {
                continue;
            }
            let flow = &self.net.flows()[i];
            let first = flow.route[0];
            let priority = flow.priority;
            self.flow_stats[i].emitted += cells;
            for _ in 0..cells {
                self.enqueue(
                    first,
                    Cell {
                        flow: i as u32,
                        emitted: now,
                        arrived: now,
                        hop: 0,
                    },
                    priority,
                );
            }
        }

        // 2. Scheduled cross-traffic bursts join the queues before
        //    service, competing with conforming cells for capacity.
        if !self.faults.is_empty() {
            for s in 0..self.servers.len() {
                let burst = self.faults.cross_cells_at(ServerId(s), now);
                for _ in 0..burst {
                    self.enqueue(
                        ServerId(s),
                        Cell {
                            flow: CROSS_FLOW,
                            emitted: now,
                            arrived: now,
                            hop: 0,
                        },
                        0,
                    );
                }
                self.fault_stats.cross_cells_injected += burst;
            }
        }

        // 3. Servers forward in topological order: a cell can traverse
        //    several empty servers within one tick (cut-through), matching
        //    the fluid model's zero minimum latency.
        for &sid in &self.order.clone() {
            self.service_server(sid);
        }

        // 4. Backlog accounting.
        for (i, s) in self.servers.iter().enumerate() {
            let b = s.backlog();
            self.server_stats[i].max_backlog = self.server_stats[i].max_backlog.max(b);
            if b > 0 {
                self.server_stats[i].busy_ticks += 1;
            }
        }

        if self.traced.is_some() {
            self.trace.arrivals.push(self.trace_arrived);
            self.trace.departures.push(self.trace_departed);
        }
        self.now += 1;
    }

    fn service_server(&mut self, sid: ServerId) {
        // An idle shared server banks no service: for integral rates the
        // served process then satisfies the discrete Reich recursion
        // `W[t] = min(G[t], W[t-1] + C)` exactly (checked against Lemma 1
        // by the integration tests), and never exceeds `C·I` cells over
        // any window. GPS servers apply the same rule per flow.
        let scale = if self.faults.is_empty() {
            Rat::ONE
        } else {
            let s = self.faults.scale_at(sid, self.now);
            if s.is_zero() {
                self.fault_stats.outage_ticks += 1;
            } else if s < Rat::ONE {
                self.fault_stats.degraded_ticks += 1;
            }
            s
        };
        let served = self.servers[sid.0].serve_tick(scale);
        self.server_stats[sid.0].forwarded += served.len() as u64;
        if self.traced == Some(sid.0) {
            self.trace_departed += served
                .iter()
                .filter(|c| self.traced_flow.is_none_or(|f| f == c.flow as usize))
                .count() as u64;
        }
        for cell in served {
            let sojourn = self.now - cell.arrived;
            let st = &mut self.server_stats[sid.0];
            st.max_sojourn = st.max_sojourn.max(sojourn);
            if cell.flow == CROSS_FLOW {
                // Cross-traffic cells consumed their service; they have
                // no route to continue on.
                self.fault_stats.cross_cells_dropped += 1;
                continue;
            }
            self.forward(cell);
        }
    }

    /// Move a served cell to the next hop, or record its delivery.
    fn forward(&mut self, cell: Cell) {
        let flow = &self.net.flows()[cell.flow as usize];
        let next_hop = cell.hop as usize + 1;
        if next_hop < flow.route.len() {
            let next = flow.route[next_hop];
            let priority = flow.priority;
            self.enqueue(
                next,
                Cell {
                    hop: next_hop as u32,
                    arrived: self.now,
                    ..cell
                },
                priority,
            );
        } else {
            let delay = self.now - cell.emitted;
            self.flow_stats[cell.flow as usize].record(delay);
        }
    }

    /// Run `ticks` further ticks and return the measurements. The report's
    /// `ticks` field records the *total* ticks simulated, including any
    /// earlier manual [`Simulation::step`] calls.
    pub fn run(mut self, ticks: u64) -> SimReport {
        let _span = dnc_telemetry::span("sim.run");
        for _ in 0..ticks {
            self.step();
        }
        dnc_telemetry::counter("sim.ticks", ticks);
        if self.fault_stats.any() {
            dnc_telemetry::counter("sim.faults.degraded_ticks", self.fault_stats.degraded_ticks);
            dnc_telemetry::counter("sim.faults.outage_ticks", self.fault_stats.outage_ticks);
            dnc_telemetry::counter(
                "sim.faults.cross_cells_injected",
                self.fault_stats.cross_cells_injected,
            );
        }
        let report = SimReport {
            ticks: self.now,
            flows: self.flow_stats,
            servers: self.server_stats,
            trace: self.traced.map(|_| self.trace),
            faults: self.fault_stats,
        };
        dnc_telemetry::counter(
            "sim.cells_delivered",
            report.flows.iter().map(|f| f.delivered).sum(),
        );
        dnc_telemetry::counter(
            "sim.cells_emitted",
            report.flows.iter().map(|f| f.emitted).sum(),
        );
        report
    }
}

/// Convenience: build and run in one call.
pub fn simulate(net: &Network, models: &[SourceModel], cfg: &SimConfig) -> SimReport {
    Simulation::new(net, models, cfg).run(cfg.ticks)
}

/// Convenience: build and run one faulty scenario in one call.
pub fn simulate_with_faults(
    net: &Network,
    models: &[SourceModel],
    cfg: &SimConfig,
    faults: FaultPlan,
) -> SimReport {
    Simulation::with_faults(net, models, cfg, faults).run(cfg.ticks)
}

/// All-greedy source assignment (the adversarial workload used for bound
/// validation).
pub fn all_greedy(net: &Network) -> Vec<SourceModel> {
    vec![SourceModel::Greedy; net.flows().len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_net::builders;
    use dnc_num::{int, rat};
    use dnc_traffic::TrafficSpec;

    #[test]
    fn lone_flow_cuts_through() {
        // A single peak-capped flow on a 3-server chain: no contention,
        // zero delay for every cell.
        let (net, _, _) = builders::chain(3, &[TrafficSpec::paper_source(int(1), rat(1, 4))]);
        let r = simulate(&net, &all_greedy(&net), &SimConfig::default());
        assert!(r.flows[0].delivered > 0);
        assert_eq!(r.flows[0].max_delay, 0);
    }

    #[test]
    fn contention_builds_queues() {
        let t = builders::tandem(2, int(1), rat(3, 16), builders::TandemOptions::default());
        let r = simulate(&t.net, &all_greedy(&t.net), &SimConfig::default());
        assert!(r.flows[t.conn0.0].max_delay > 0, "greedy load must queue");
        assert!(r.servers.iter().any(|s| s.max_backlog > 0));
    }

    #[test]
    fn conservation_no_cell_lost() {
        let t = builders::tandem(3, int(1), rat(1, 8), builders::TandemOptions::default());
        let cfg = SimConfig {
            ticks: 2048,
            ..SimConfig::default()
        };
        let r = simulate(&t.net, &all_greedy(&t.net), &cfg);
        for (i, f) in r.flows.iter().enumerate() {
            // Everything emitted is delivered or still queued; with
            // utilization < 1 the backlog at the end is small.
            assert!(f.delivered <= f.emitted, "flow {i}");
            assert!(
                f.emitted - f.delivered <= 64,
                "flow {i}: too many cells stuck ({} of {})",
                f.emitted - f.delivered,
                f.emitted
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let t = builders::tandem(2, int(1), rat(1, 8), builders::TandemOptions::default());
        let models = vec![SourceModel::Bernoulli { num: 1, den: 4 }; t.net.flows().len()];
        let cfg = SimConfig {
            ticks: 512,
            seed: 7,
            histogram_buckets: 64,
            ..SimConfig::default()
        };
        let a = simulate(&t.net, &models, &cfg);
        let b = simulate(&t.net, &models, &cfg);
        for (x, y) in a.flows.iter().zip(b.flows.iter()) {
            assert_eq!(x.emitted, y.emitted);
            assert_eq!(x.max_delay, y.max_delay);
        }
    }

    #[test]
    fn greedy_delays_below_decomposed_bound() {
        use dnc_core::{decomposed::Decomposed, DelayAnalysis};
        for n in [2usize, 4] {
            let t = builders::tandem(
                n,
                int(1),
                rat(3, 16), // U = 3/4
                builders::TandemOptions::default(),
            );
            let cfg = SimConfig {
                ticks: 8192,
                ..SimConfig::default()
            };
            let sim = simulate(&t.net, &all_greedy(&t.net), &cfg);
            let bound = Decomposed::paper().analyze(&t.net).unwrap();
            for (i, f) in t.net.flows().iter().enumerate() {
                let observed = sim.max_delay(i);
                let b = bound.flows[i].e2e;
                assert!(
                    observed <= b,
                    "n={n} flow {}: observed {} > bound {}",
                    f.name,
                    observed,
                    b
                );
            }
        }
    }

    #[test]
    fn gps_guarantees_reserved_rate() {
        use dnc_net::{Discipline, Flow, Network, Server};
        let mut net = Network::new();
        let s = net.add_server(Server {
            name: "gps".into(),
            rate: Rat::ONE,
            discipline: Discipline::Gps,
        });
        let light = net
            .add_flow(Flow {
                name: "light".into(),
                spec: TrafficSpec::paper_source(int(1), rat(1, 4)),
                route: vec![s],
                priority: 0,
            })
            .unwrap();
        let heavy = net
            .add_flow(Flow {
                name: "heavy".into(),
                spec: TrafficSpec::token_bucket(int(30), rat(1, 2)),
                route: vec![s],
                priority: 0,
            })
            .unwrap();
        net.reserve(light, s, rat(1, 4));
        net.reserve(heavy, s, rat(1, 2));
        let r = simulate(&net, &all_greedy(&net), &SimConfig::default());
        // The light flow is isolated from the heavy burst: worst delay is
        // its own smoothing at rate 1/4 (σ=1, peak 1 -> at most ~4 ticks
        // of credit wait), not the 30-cell backlog of its neighbour.
        assert!(
            r.flows[light.0].max_delay <= 5,
            "light flow delayed {} ticks despite its reservation",
            r.flows[light.0].max_delay
        );
        assert!(r.flows[heavy.0].max_delay > 10);
    }

    #[test]
    fn gps_delays_below_gps_bounds() {
        use dnc_core::{decomposed::Decomposed, DelayAnalysis};
        use dnc_net::{Discipline, Flow, Network, Server};
        let mut net = Network::new();
        let servers: Vec<_> = (0..3)
            .map(|i| {
                net.add_server(Server {
                    name: format!("g{i}"),
                    rate: Rat::ONE,
                    discipline: Discipline::Gps,
                })
            })
            .collect();
        let mut flows = Vec::new();
        for k in 0..2 {
            let f = net
                .add_flow(Flow {
                    name: format!("f{k}"),
                    spec: TrafficSpec::paper_source(int(3), rat(1, 4)),
                    route: servers.clone(),
                    priority: 0,
                })
                .unwrap();
            for &s in &servers {
                net.reserve(f, s, rat(1, 2));
            }
            flows.push(f);
        }
        let bound = Decomposed::paper().analyze(&net).unwrap();
        let sim = simulate(&net, &all_greedy(&net), &cfg_ticks(8192));
        for &f in &flows {
            // The analytic curve already charges the per-hop
            // packetization latency, so no slack is needed.
            assert!(
                sim.max_delay(f.0) <= bound.bound(f),
                "flow {f}: sim {} > bound {}",
                sim.flows[f.0].max_delay,
                bound.bound(f)
            );
        }
    }

    fn cfg_ticks(ticks: u64) -> SimConfig {
        SimConfig {
            ticks,
            ..SimConfig::default()
        }
    }

    #[test]
    fn degraded_server_increases_delay() {
        use crate::fault::Fault;
        let t = builders::tandem(2, int(1), rat(3, 16), builders::TandemOptions::default());
        let cfg = cfg_ticks(4096);
        let nominal = simulate(&t.net, &all_greedy(&t.net), &cfg);
        let plan = FaultPlan {
            faults: vec![Fault::Degrade {
                server: dnc_net::ServerId(0),
                from: 0,
                until: 4096,
                scale: rat(4, 5),
            }],
        };
        let faulty = simulate_with_faults(&t.net, &all_greedy(&t.net), &cfg, plan);
        assert!(faulty.faults.any());
        assert_eq!(faulty.faults.degraded_ticks, 4096);
        assert!(
            faulty.flows[t.conn0.0].max_delay >= nominal.flows[t.conn0.0].max_delay,
            "losing capacity cannot shrink the worst delay: {} < {}",
            faulty.flows[t.conn0.0].max_delay,
            nominal.flows[t.conn0.0].max_delay
        );
    }

    #[test]
    fn outage_stops_service_entirely() {
        use crate::fault::Fault;
        let (net, _, _) = builders::chain(1, &[TrafficSpec::paper_source(int(1), rat(1, 4))]);
        let plan = FaultPlan {
            faults: vec![Fault::Outage {
                server: dnc_net::ServerId(0),
                from: 0,
                until: 512,
            }],
        };
        let r = simulate_with_faults(&net, &all_greedy(&net), &cfg_ticks(512), plan);
        assert_eq!(r.flows[0].delivered, 0, "nothing served during an outage");
        assert_eq!(r.faults.outage_ticks, 512);
        assert!(r.servers[0].max_backlog > 0);
    }

    #[test]
    fn cross_burst_consumes_service_and_is_dropped() {
        use crate::fault::Fault;
        let (net, _, _) = builders::chain(1, &[TrafficSpec::paper_source(int(1), rat(1, 4))]);
        let cfg = cfg_ticks(2048);
        let nominal = simulate(&net, &all_greedy(&net), &cfg);
        let plan = FaultPlan {
            faults: vec![Fault::CrossBurst {
                server: dnc_net::ServerId(0),
                at: 16,
                cells: 32,
            }],
        };
        let faulty = simulate_with_faults(&net, &all_greedy(&net), &cfg, plan);
        assert_eq!(faulty.faults.cross_cells_injected, 32);
        assert_eq!(
            faulty.faults.cross_cells_dropped, 32,
            "every alien cell is served then discarded"
        );
        // Conservation for the real flow is untouched.
        assert_eq!(faulty.flows[0].emitted, nominal.flows[0].emitted);
        assert!(
            faulty.flows[0].max_delay >= nominal.flows[0].max_delay,
            "cross traffic cannot shrink the worst delay"
        );
        assert!(faulty.flows[0].max_delay > 0, "32-cell burst must queue");
    }

    #[test]
    fn faulty_run_is_deterministic() {
        use crate::fault::Fault;
        let t = builders::tandem(2, int(1), rat(1, 8), builders::TandemOptions::default());
        let models = vec![SourceModel::Bernoulli { num: 1, den: 4 }; t.net.flows().len()];
        let plan = FaultPlan {
            faults: vec![
                Fault::Jitter {
                    server: dnc_net::ServerId(0),
                    period: 32,
                    scale: rat(1, 2),
                },
                Fault::CrossBurst {
                    server: dnc_net::ServerId(1),
                    at: 100,
                    cells: 5,
                },
            ],
        };
        let cfg = SimConfig {
            ticks: 1024,
            seed: 11,
            ..SimConfig::default()
        };
        let a = simulate_with_faults(&t.net, &models, &cfg, plan.clone());
        let b = simulate_with_faults(&t.net, &models, &cfg, plan);
        assert_eq!(a.faults, b.faults);
        for (x, y) in a.flows.iter().zip(b.flows.iter()) {
            assert_eq!(x.emitted, y.emitted);
            assert_eq!(x.delivered, y.delivered);
            assert_eq!(x.max_delay, y.max_delay);
        }
    }

    #[test]
    fn nominal_run_reports_no_faults() {
        let (net, _, _) = builders::chain(2, &[TrafficSpec::paper_source(int(1), rat(1, 4))]);
        let r = simulate(&net, &all_greedy(&net), &SimConfig::default());
        assert!(!r.faults.any());
        assert_eq!(r.faults, crate::fault::FaultStats::default());
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn invalid_plan_is_rejected_at_build() {
        use crate::fault::Fault;
        let (net, _, _) = builders::chain(1, &[TrafficSpec::paper_source(int(1), rat(1, 4))]);
        let plan = FaultPlan {
            faults: vec![Fault::Degrade {
                server: dnc_net::ServerId(0),
                from: 0,
                until: 10,
                scale: int(3),
            }],
        };
        let _ = Simulation::with_faults(&net, &all_greedy(&net), &SimConfig::default(), plan);
    }

    #[test]
    fn static_priority_favors_urgent() {
        use dnc_net::{Discipline, Flow, Network, Server};
        let mut net = Network::new();
        let s = net.add_server(Server {
            name: "sp".into(),
            rate: Rat::ONE,
            discipline: Discipline::StaticPriority,
        });
        let urgent = net
            .add_flow(Flow {
                name: "urgent".into(),
                spec: TrafficSpec::paper_source(int(1), rat(1, 4)),
                route: vec![s],
                priority: 0,
            })
            .unwrap();
        let bulk = net
            .add_flow(Flow {
                name: "bulk".into(),
                spec: TrafficSpec::token_bucket(int(20), rat(1, 2)),
                route: vec![s],
                priority: 3,
            })
            .unwrap();
        let r = simulate(&net, &all_greedy(&net), &SimConfig::default());
        assert!(
            r.flows[urgent.0].max_delay <= 1,
            "urgent delayed {} ticks",
            r.flows[urgent.0].max_delay
        );
        assert!(r.flows[bulk.0].max_delay > r.flows[urgent.0].max_delay);
    }
}
