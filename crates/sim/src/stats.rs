//! Simulation measurement: per-flow delay statistics and per-server
//! backlog statistics.

use dnc_num::Rat;

/// Delay statistics of one flow over a run.
#[derive(Clone, Debug, Default)]
pub struct FlowStats {
    /// Cells emitted by the source.
    pub emitted: u64,
    /// Cells that completed their route.
    pub delivered: u64,
    /// Largest observed end-to-end delay, in ticks.
    pub max_delay: u64,
    /// Smallest observed end-to-end delay (`None` until a delivery).
    pub min_delay: Option<u64>,
    /// Sum of delays (for the mean).
    pub total_delay: u64,
    /// Delay histogram: `histogram[d]` counts cells delayed exactly `d`
    /// ticks, saturating in the last bucket.
    pub histogram: Vec<u64>,
}

impl FlowStats {
    pub(crate) fn new(histogram_buckets: usize) -> FlowStats {
        FlowStats {
            histogram: vec![0; histogram_buckets.max(1)],
            ..FlowStats::default()
        }
    }

    pub(crate) fn record(&mut self, delay: u64) {
        self.delivered += 1;
        self.total_delay += delay;
        self.max_delay = self.max_delay.max(delay);
        self.min_delay = Some(self.min_delay.map_or(delay, |m| m.min(delay)));
        let idx = (delay as usize).min(self.histogram.len() - 1);
        self.histogram[idx] += 1;
    }

    /// Observed delay jitter: `max − min` over delivered cells (0 until
    /// two distinct delays are seen).
    pub fn jitter(&self) -> u64 {
        self.min_delay.map_or(0, |m| self.max_delay - m)
    }

    /// Mean delay over delivered cells.
    pub fn mean_delay(&self) -> Rat {
        if self.delivered == 0 {
            Rat::ZERO
        } else {
            Rat::from(self.total_delay as i64) / Rat::from(self.delivered as i64)
        }
    }

    /// The `q`-quantile (e.g. `q = 99/100`) of the delay distribution, in
    /// ticks (last bucket saturates).
    pub fn quantile(&self, q: Rat) -> u64 {
        if self.delivered == 0 {
            return 0;
        }
        let target = q * Rat::from(self.delivered as i64);
        let mut seen = 0u64;
        for (d, &c) in self.histogram.iter().enumerate() {
            seen += c;
            if Rat::from(seen as i64) >= target {
                return d as u64;
            }
        }
        (self.histogram.len() - 1) as u64
    }
}

/// Backlog statistics of one server over a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Largest queue length observed, in cells.
    pub max_backlog: u64,
    /// Cells forwarded.
    pub forwarded: u64,
    /// Ticks with a non-empty queue.
    pub busy_ticks: u64,
    /// Largest single-cell sojourn (local delay) at this server, in ticks.
    pub max_sojourn: u64,
}

/// Per-tick cumulative arrival/departure counts of one server — the
/// discrete counterpart of the paper's `G_j(t)` and `W_j(t)`, recorded
/// when [`crate::SimConfig::trace_server`] is set. Used by tests to check
/// Lemma 1 (`W = G ⊗ λ_C`) against the simulator.
#[derive(Clone, Debug, Default)]
pub struct ServerTrace {
    /// `arrivals[t]` = cells arrived at the server by the end of tick `t`
    /// (cumulative).
    pub arrivals: Vec<u64>,
    /// `departures[t]` = cells forwarded by the end of tick `t`
    /// (cumulative).
    pub departures: Vec<u64>,
}

/// Everything a run measured.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Ticks simulated.
    pub ticks: u64,
    /// Per-flow statistics, indexed by flow id.
    pub flows: Vec<FlowStats>,
    /// Per-server statistics, indexed by server id.
    pub servers: Vec<ServerStats>,
    /// Per-tick trace of the configured server, if any.
    pub trace: Option<ServerTrace>,
    /// What the fault plan actually injected (all zero on nominal runs).
    pub faults: crate::fault::FaultStats,
}

impl SimReport {
    /// Max observed delay of a flow, as an exact rational (for comparing
    /// against bounds).
    pub fn max_delay(&self, flow: usize) -> Rat {
        Rat::from(self.flows[flow].max_delay as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_num::{int, rat};

    #[test]
    fn record_and_mean() {
        let mut s = FlowStats::new(16);
        s.emitted = 3;
        s.record(1);
        s.record(3);
        s.record(2);
        assert_eq!(s.delivered, 3);
        assert_eq!(s.max_delay, 3);
        assert_eq!(s.min_delay, Some(1));
        assert_eq!(s.jitter(), 2);
        assert_eq!(s.mean_delay(), int(2));
        assert_eq!(s.histogram[1], 1);
    }

    #[test]
    fn histogram_saturates() {
        let mut s = FlowStats::new(4);
        s.record(100);
        assert_eq!(s.histogram[3], 1);
        assert_eq!(s.max_delay, 100);
    }

    #[test]
    fn quantiles() {
        let mut s = FlowStats::new(16);
        for d in [0u64, 0, 1, 1, 1, 2, 5, 9] {
            s.record(d);
        }
        assert_eq!(s.quantile(rat(1, 2)), 1);
        assert_eq!(s.quantile(int(1)), 9);
        assert_eq!(s.quantile(rat(1, 8)), 0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = FlowStats::new(4);
        assert_eq!(s.mean_delay(), Rat::ZERO);
        assert_eq!(s.quantile(rat(1, 2)), 0);
        assert_eq!(s.min_delay, None);
        assert_eq!(s.jitter(), 0);
    }
}
