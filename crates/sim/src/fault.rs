//! Fault injection for the tick engine.
//!
//! A [`FaultPlan`] is a deterministic schedule of per-server faults the
//! simulator applies while it runs:
//!
//! * [`Fault::Degrade`] — a capacity-degradation window: the server's
//!   service rate is scaled by `scale ∈ [0, 1]` for `[from, until)`;
//! * [`Fault::Outage`] — a full outage interval (scale 0);
//! * [`Fault::Jitter`] — a jittered link: every other `period`-tick
//!   window runs at `scale` instead of full rate;
//! * [`Fault::CrossBurst`] — adversarial greedy-burst cross-traffic:
//!   `cells` alien cells injected into a server's queue at one tick,
//!   consuming service like any other cells and dropped on exit.
//!
//! Everything is deterministic given the plan — randomness lives in the
//! chaos harness that *generates* plans, never in the engine — so faulty
//! runs replay exactly like nominal ones.
//!
//! The plan also answers the static questions the chaos harness needs to
//! build a *degraded-but-sound claim*: the minimum sustained rate scale
//! per server ([`FaultPlan::min_scale`], service curves are monotone in
//! the rate, so a constant-`min_scale` analysis bounds every sample path
//! the plan allows) and the total cross-traffic volume per server
//! ([`FaultPlan::total_cross_cells`], a `σ`-only token bucket).

use dnc_net::{Discipline, Network, ServerId};
use dnc_num::Rat;

/// Sentinel flow id carried by injected cross-traffic cells.
pub const CROSS_FLOW: u32 = u32::MAX;

/// One scheduled fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Scale the server's rate by `scale` during `[from, until)`.
    Degrade {
        /// Target server.
        server: ServerId,
        /// First faulty tick (inclusive).
        from: u64,
        /// End of the window (exclusive).
        until: u64,
        /// Rate multiplier in `[0, 1]`.
        scale: Rat,
    },
    /// Full outage (`scale = 0`) during `[from, until)`.
    Outage {
        /// Target server.
        server: ServerId,
        /// First faulty tick (inclusive).
        from: u64,
        /// End of the window (exclusive).
        until: u64,
    },
    /// Jittered link: in every other `period`-tick window (the odd ones)
    /// the rate is scaled by `scale`.
    Jitter {
        /// Target server.
        server: ServerId,
        /// Half-period of the jitter square wave (ticks, must be > 0).
        period: u64,
        /// Rate multiplier in `[0, 1]` during the slow half.
        scale: Rat,
    },
    /// Inject `cells` cross-traffic cells into the server's queue at
    /// tick `at`. Only shared-queue (FIFO / static-priority) servers can
    /// absorb alien cells.
    CrossBurst {
        /// Target server.
        server: ServerId,
        /// Injection tick.
        at: u64,
        /// Burst size in cells.
        cells: u64,
    },
}

impl Fault {
    /// The server this fault targets.
    pub fn server(&self) -> ServerId {
        match *self {
            Fault::Degrade { server, .. }
            | Fault::Outage { server, .. }
            | Fault::Jitter { server, .. }
            | Fault::CrossBurst { server, .. } => server,
        }
    }
}

/// A deterministic schedule of faults for one simulation run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// The scheduled faults (order does not matter; overlapping rate
    /// faults combine by taking the *minimum* scale).
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty (nominal) plan.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Check the plan against a network: servers must exist, scales must
    /// lie in `[0, 1]`, jitter periods must be positive, and cross
    /// bursts may only target shared-queue (FIFO / static-priority)
    /// servers — GPS and EDF state is per-flow and cannot absorb alien
    /// cells.
    pub fn validate(&self, net: &Network) -> Result<(), String> {
        for f in &self.faults {
            let sid = f.server();
            if sid.0 >= net.servers().len() {
                return Err(format!("fault targets unknown server {sid}"));
            }
            match f {
                Fault::Degrade {
                    scale, from, until, ..
                } => {
                    if scale.is_negative() || *scale > Rat::ONE {
                        return Err(format!("degrade scale {scale} outside [0, 1]"));
                    }
                    if from >= until {
                        return Err(format!("empty degrade window [{from}, {until})"));
                    }
                }
                Fault::Outage { from, until, .. } => {
                    if from >= until {
                        return Err(format!("empty outage window [{from}, {until})"));
                    }
                }
                Fault::Jitter { period, scale, .. } => {
                    if *period == 0 {
                        return Err("jitter period must be positive".into());
                    }
                    if scale.is_negative() || *scale > Rat::ONE {
                        return Err(format!("jitter scale {scale} outside [0, 1]"));
                    }
                }
                Fault::CrossBurst { server, .. } => {
                    let d = net.server(*server).discipline;
                    if !matches!(d, Discipline::Fifo | Discipline::StaticPriority) {
                        return Err(format!(
                            "cross burst targets {server} ({d:?}): only FIFO/SP servers take cross traffic"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// The rate scale applied to `server` at `tick` (minimum over every
    /// applicable fault; `1` when none applies).
    pub fn scale_at(&self, server: ServerId, tick: u64) -> Rat {
        let mut scale = Rat::ONE;
        for f in &self.faults {
            if f.server() != server {
                continue;
            }
            let s = match *f {
                Fault::Degrade {
                    from, until, scale, ..
                } if (from..until).contains(&tick) => scale,
                Fault::Outage { from, until, .. } if (from..until).contains(&tick) => Rat::ZERO,
                Fault::Jitter { period, scale, .. } if (tick / period) % 2 == 1 => scale,
                _ => continue,
            };
            scale = scale.min(s);
        }
        scale
    }

    /// Cross-traffic cells injected at `server` at `tick`.
    pub fn cross_cells_at(&self, server: ServerId, tick: u64) -> u64 {
        self.faults
            .iter()
            .map(|f| match *f {
                Fault::CrossBurst {
                    server: s,
                    at,
                    cells,
                } if s == server && at == tick => cells,
                _ => 0,
            })
            .sum()
    }

    /// The minimum sustained rate scale of `server` over `[0, horizon)`.
    /// Service curves are monotone in the rate, so an analysis of the
    /// network with this constant scale bounds every sample path the
    /// plan allows — the *degraded claim* the chaos harness tests.
    pub fn min_scale(&self, server: ServerId, horizon: u64) -> Rat {
        let mut min = Rat::ONE;
        for f in &self.faults {
            if f.server() != server {
                continue;
            }
            let s = match *f {
                Fault::Degrade {
                    from, until, scale, ..
                } if from < horizon && until > 0 => scale,
                Fault::Outage { from, .. } if from < horizon => Rat::ZERO,
                Fault::Jitter { period, scale, .. } if period < horizon => scale,
                _ => continue,
            };
            min = min.min(s);
        }
        min
    }

    /// Total cross-traffic volume injected at `server` over
    /// `[0, horizon)` — the `σ` of the zero-rate token bucket the chaos
    /// harness adds to the degraded claim.
    pub fn total_cross_cells(&self, server: ServerId, horizon: u64) -> u64 {
        self.faults
            .iter()
            .map(|f| match *f {
                Fault::CrossBurst {
                    server: s,
                    at,
                    cells,
                } if s == server && at < horizon => cells,
                _ => 0,
            })
            .sum()
    }

    /// Servers targeted by at least one fault.
    pub fn touched_servers(&self) -> Vec<ServerId> {
        let mut out: Vec<ServerId> = self.faults.iter().map(|f| f.server()).collect();
        out.sort_by_key(|s| s.0);
        out.dedup();
        out
    }
}

/// What the engine actually injected during a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Server-ticks that ran at a reduced (but nonzero) rate.
    pub degraded_ticks: u64,
    /// Server-ticks that ran at rate zero.
    pub outage_ticks: u64,
    /// Cross-traffic cells injected into queues.
    pub cross_cells_injected: u64,
    /// Cross-traffic cells that completed service and were discarded.
    pub cross_cells_dropped: u64,
}

impl FaultStats {
    /// Whether any fault actually fired during the run.
    pub fn any(&self) -> bool {
        self.degraded_ticks > 0 || self.outage_ticks > 0 || self.cross_cells_injected > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_net::builders;
    use dnc_num::{int, rat};
    use dnc_traffic::TrafficSpec;

    fn net3() -> Network {
        builders::chain(3, &[TrafficSpec::paper_source(int(1), rat(1, 4))]).0
    }

    #[test]
    fn nominal_plan_scales_to_one() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.scale_at(ServerId(0), 17), Rat::ONE);
        assert_eq!(plan.cross_cells_at(ServerId(0), 17), 0);
        assert_eq!(plan.min_scale(ServerId(0), 1000), Rat::ONE);
    }

    #[test]
    fn degrade_window_applies_inside_only() {
        let plan = FaultPlan {
            faults: vec![Fault::Degrade {
                server: ServerId(1),
                from: 10,
                until: 20,
                scale: rat(1, 2),
            }],
        };
        assert_eq!(plan.scale_at(ServerId(1), 9), Rat::ONE);
        assert_eq!(plan.scale_at(ServerId(1), 10), rat(1, 2));
        assert_eq!(plan.scale_at(ServerId(1), 19), rat(1, 2));
        assert_eq!(plan.scale_at(ServerId(1), 20), Rat::ONE);
        assert_eq!(plan.scale_at(ServerId(0), 15), Rat::ONE);
        assert_eq!(plan.min_scale(ServerId(1), 4096), rat(1, 2));
    }

    #[test]
    fn overlapping_faults_take_min_scale() {
        let s = ServerId(0);
        let plan = FaultPlan {
            faults: vec![
                Fault::Degrade {
                    server: s,
                    from: 0,
                    until: 100,
                    scale: rat(3, 4),
                },
                Fault::Outage {
                    server: s,
                    from: 50,
                    until: 60,
                },
            ],
        };
        assert_eq!(plan.scale_at(s, 10), rat(3, 4));
        assert_eq!(plan.scale_at(s, 55), Rat::ZERO);
        assert_eq!(plan.min_scale(s, 4096), Rat::ZERO);
    }

    #[test]
    fn jitter_square_wave() {
        let s = ServerId(2);
        let plan = FaultPlan {
            faults: vec![Fault::Jitter {
                server: s,
                period: 4,
                scale: rat(1, 2),
            }],
        };
        // Ticks 0..4 full, 4..8 slow, 8..12 full, ...
        assert_eq!(plan.scale_at(s, 0), Rat::ONE);
        assert_eq!(plan.scale_at(s, 3), Rat::ONE);
        assert_eq!(plan.scale_at(s, 4), rat(1, 2));
        assert_eq!(plan.scale_at(s, 7), rat(1, 2));
        assert_eq!(plan.scale_at(s, 8), Rat::ONE);
        assert_eq!(plan.min_scale(s, 4096), rat(1, 2));
    }

    #[test]
    fn cross_burst_accounting() {
        let s = ServerId(0);
        let plan = FaultPlan {
            faults: vec![
                Fault::CrossBurst {
                    server: s,
                    at: 5,
                    cells: 8,
                },
                Fault::CrossBurst {
                    server: s,
                    at: 9,
                    cells: 4,
                },
            ],
        };
        assert_eq!(plan.cross_cells_at(s, 5), 8);
        assert_eq!(plan.cross_cells_at(s, 6), 0);
        assert_eq!(plan.total_cross_cells(s, 4096), 12);
        assert_eq!(plan.total_cross_cells(s, 6), 8);
        assert_eq!(plan.touched_servers(), vec![s]);
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let net = net3();
        let bad_scale = FaultPlan {
            faults: vec![Fault::Degrade {
                server: ServerId(0),
                from: 0,
                until: 10,
                scale: int(2),
            }],
        };
        assert!(bad_scale.validate(&net).is_err());
        let empty_window = FaultPlan {
            faults: vec![Fault::Outage {
                server: ServerId(0),
                from: 10,
                until: 10,
            }],
        };
        assert!(empty_window.validate(&net).is_err());
        let unknown = FaultPlan {
            faults: vec![Fault::Outage {
                server: ServerId(99),
                from: 0,
                until: 10,
            }],
        };
        assert!(unknown.validate(&net).is_err());
        let ok = FaultPlan {
            faults: vec![Fault::CrossBurst {
                server: ServerId(1),
                at: 3,
                cells: 5,
            }],
        };
        assert!(ok.validate(&net).is_ok());
    }

    #[test]
    fn validate_rejects_cross_burst_on_gps() {
        use dnc_net::{Flow, Server};
        let mut net = Network::new();
        let s = net.add_server(Server {
            name: "g".into(),
            rate: Rat::ONE,
            discipline: Discipline::Gps,
        });
        net.add_flow(Flow {
            name: "f".into(),
            spec: TrafficSpec::paper_source(int(1), rat(1, 4)),
            route: vec![s],
            priority: 0,
        })
        .unwrap();
        let plan = FaultPlan {
            faults: vec![Fault::CrossBurst {
                server: s,
                at: 0,
                cells: 1,
            }],
        };
        assert!(plan.validate(&net).is_err());
    }
}
