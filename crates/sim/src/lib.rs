#![warn(missing_docs)]

//! # dnc-sim — cell-level discrete-event simulator for FIFO/SP networks
//!
//! The paper evaluates analytically; this crate supplies the missing
//! empirical leg: a deterministic, cell-based simulator of the same
//! networks, used to certify that every computed bound dominates every
//! observed delay (`simulated max ≤ bound` for conforming sources) and to
//! show how pessimistic each analysis is relative to realizable behavior.
//!
//! Model:
//! * time advances in unit **ticks**; a server of rate `C` accrues `C`
//!   cells of service credit per tick (exact rationals, no drift) and
//!   forwards whole cells while it has credit and backlog;
//! * servers are processed in topological order within a tick, so an
//!   uncontended cell cuts through the whole network in one tick — the
//!   cell-level counterpart of the fluid model the bounds are computed
//!   in (the simulator can only *under*-shoot the fluid worst case, the
//!   safe direction for a ground-truth oracle);
//! * sources are [`dnc_traffic::CellSource`]s: greedy (adversarial),
//!   periodic, on-off, or Bernoulli, always shaped to their spec;
//! * FIFO and static-priority disciplines are supported, mirroring
//!   `dnc-net`'s server model.
//!
//! [`batch`] runs seed/model sweeps on worker threads (crossbeam) — the
//! knob-turning companion for the benches.

mod engine;
mod stats;

pub mod batch;
pub mod fault;

pub use engine::{all_greedy, simulate, simulate_with_faults, SimConfig, Simulation};
pub use fault::{Fault, FaultPlan, FaultStats};
pub use stats::{FlowStats, ServerStats, ServerTrace, SimReport};
