//! Parallel batch runs: sweep seeds or source-model assignments across
//! worker threads (crossbeam scoped threads — the simulator itself is
//! single-threaded per run, runs are embarrassingly parallel).

use crate::engine::{simulate, SimConfig};
use crate::stats::SimReport;
use dnc_net::Network;
use dnc_traffic::SourceModel;

/// One job of a batch.
#[derive(Clone, Debug)]
pub struct BatchJob {
    /// Source model per flow.
    pub models: Vec<SourceModel>,
    /// Run configuration.
    pub cfg: SimConfig,
}

/// Run all jobs against `net`, at most `workers` at a time, preserving
/// job order in the result.
pub fn run_batch(net: &Network, jobs: &[BatchJob], workers: usize) -> Vec<SimReport> {
    let _span = dnc_telemetry::span("sim.batch");
    dnc_telemetry::counter("sim.batch.jobs", jobs.len() as u64);
    assert!(workers >= 1);
    let mut results: Vec<Option<SimReport>> = vec![None; jobs.len()];
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mutex = std::sync::Mutex::new(&mut results);

    crossbeam::scope(|scope| {
        for _ in 0..workers.min(jobs.len()) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let report = simulate(net, &jobs[i].models, &jobs[i].cfg);
                results_mutex.lock().unwrap()[i] = Some(report);
            });
        }
    })
    .expect("batch worker panicked");

    results
        .into_iter()
        .map(|r| r.expect("every job produced a report"))
        .collect()
}

/// Convenience: the same model assignment across `seeds`, varying only
/// the RNG seed.
pub fn seed_sweep(
    net: &Network,
    models: &[SourceModel],
    base: &SimConfig,
    seeds: &[u64],
    workers: usize,
) -> Vec<SimReport> {
    let jobs: Vec<BatchJob> = seeds
        .iter()
        .map(|&seed| BatchJob {
            models: models.to_vec(),
            cfg: SimConfig {
                seed,
                ..base.clone()
            },
        })
        .collect();
    run_batch(net, &jobs, workers)
}

/// The worst delay of `flow` across a set of reports.
pub fn worst_delay(reports: &[SimReport], flow: usize) -> u64 {
    reports
        .iter()
        .map(|r| r.flows[flow].max_delay)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_net::builders;
    use dnc_num::{int, rat};

    #[test]
    fn batch_matches_sequential() {
        let t = builders::tandem(2, int(1), rat(1, 8), builders::TandemOptions::default());
        let models = vec![SourceModel::Bernoulli { num: 1, den: 3 }; t.net.flows().len()];
        let cfg = SimConfig {
            ticks: 512,
            ..SimConfig::default()
        };
        let seeds = [1u64, 2, 3, 4, 5, 6];
        let par = seed_sweep(&t.net, &models, &cfg, &seeds, 4);
        let seq = seed_sweep(&t.net, &models, &cfg, &seeds, 1);
        assert_eq!(par.len(), seq.len());
        for (a, b) in par.iter().zip(seq.iter()) {
            for (x, y) in a.flows.iter().zip(b.flows.iter()) {
                assert_eq!(x.emitted, y.emitted);
                assert_eq!(x.max_delay, y.max_delay);
                assert_eq!(x.delivered, y.delivered);
            }
        }
    }

    #[test]
    fn worst_delay_across_seeds() {
        let t = builders::tandem(2, int(1), rat(3, 16), builders::TandemOptions::default());
        let models = vec![
            SourceModel::OnOff {
                on: 3,
                off: 5,
                phase: 0
            };
            t.net.flows().len()
        ];
        let cfg = SimConfig {
            ticks: 1024,
            ..SimConfig::default()
        };
        let reports = seed_sweep(&t.net, &models, &cfg, &[1, 2, 3], 3);
        let w = worst_delay(&reports, t.conn0.0);
        assert!(reports.iter().all(|r| r.flows[t.conn0.0].max_delay <= w));
    }
}
