//! Parallel batch runs: sweep seeds or source-model assignments across
//! worker threads (crossbeam scoped threads — the simulator itself is
//! single-threaded per run, runs are embarrassingly parallel).
//!
//! A panicking job (bad model assignment, engine assertion) is isolated:
//! it becomes a per-job [`Err`] in the returned vector instead of taking
//! the whole batch down with it.

use crate::engine::{simulate, SimConfig};
use crate::stats::SimReport;
use dnc_net::Network;
use dnc_traffic::SourceModel;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One job of a batch.
#[derive(Clone, Debug)]
pub struct BatchJob {
    /// Source model per flow.
    pub models: Vec<SourceModel>,
    /// Run configuration.
    pub cfg: SimConfig,
}

/// What one job produced: a report, or the panic/failure message of the
/// job that died. Order matches the submitted jobs.
pub type JobResult = Result<SimReport, String>;

/// Run all jobs against `net`, at most `workers` at a time, preserving
/// job order in the result. A job that panics yields an `Err` carrying
/// the panic message; the remaining jobs still run to completion.
pub fn run_batch(net: &Network, jobs: &[BatchJob], workers: usize) -> Vec<JobResult> {
    let _span = dnc_telemetry::span("sim.batch");
    dnc_telemetry::counter("sim.batch.jobs", jobs.len() as u64);
    assert!(workers >= 1);
    let mut results: Vec<Option<JobResult>> = (0..jobs.len()).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mutex = std::sync::Mutex::new(&mut results);

    let scope_ok = crossbeam::scope(|scope| {
        for _ in 0..workers.min(jobs.len()) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    simulate(net, &jobs[i].models, &jobs[i].cfg)
                }))
                .map_err(|payload| panic_message(payload.as_ref()));
                if outcome.is_err() {
                    dnc_telemetry::counter("sim.batch.failed_jobs", 1);
                }
                let mut slots = results_mutex
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                slots[i] = Some(outcome);
            });
        }
    })
    .is_ok();

    results
        .into_iter()
        .map(|r| match r {
            Some(outcome) => outcome,
            // Only reachable if a worker died outside the per-job guard
            // (scope_ok false) before claiming/finishing this slot.
            None if !scope_ok => Err("batch worker died before running this job".to_string()),
            None => Err("job was never scheduled".to_string()),
        })
        .collect()
}

/// Render a caught panic payload (`&str` or `String` from `panic!`,
/// `assert!`, …) as a message for the per-job error.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("job panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("job panicked: {s}")
    } else {
        "job panicked".to_string()
    }
}

/// Collapse a batch into its reports, or the first per-job error
/// (annotated with the job index) if any job failed.
pub fn collect_reports(results: Vec<JobResult>) -> Result<Vec<SimReport>, String> {
    let mut reports = Vec::with_capacity(results.len());
    for (i, r) in results.into_iter().enumerate() {
        match r {
            Ok(report) => reports.push(report),
            Err(e) => return Err(format!("job {i}: {e}")),
        }
    }
    Ok(reports)
}

/// Convenience: the same model assignment across `seeds`, varying only
/// the RNG seed.
pub fn seed_sweep(
    net: &Network,
    models: &[SourceModel],
    base: &SimConfig,
    seeds: &[u64],
    workers: usize,
) -> Vec<JobResult> {
    let jobs: Vec<BatchJob> = seeds
        .iter()
        .map(|&seed| BatchJob {
            models: models.to_vec(),
            cfg: SimConfig {
                seed,
                ..base.clone()
            },
        })
        .collect();
    run_batch(net, &jobs, workers)
}

/// The worst delay of `flow` across a set of reports.
pub fn worst_delay(reports: &[SimReport], flow: usize) -> u64 {
    reports
        .iter()
        .map(|r| r.flows[flow].max_delay)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_net::builders;
    use dnc_num::{int, rat};

    #[test]
    fn batch_matches_sequential() {
        let t = builders::tandem(2, int(1), rat(1, 8), builders::TandemOptions::default());
        let models = vec![SourceModel::Bernoulli { num: 1, den: 3 }; t.net.flows().len()];
        let cfg = SimConfig {
            ticks: 512,
            ..SimConfig::default()
        };
        let seeds = [1u64, 2, 3, 4, 5, 6];
        let par = collect_reports(seed_sweep(&t.net, &models, &cfg, &seeds, 4)).unwrap();
        let seq = collect_reports(seed_sweep(&t.net, &models, &cfg, &seeds, 1)).unwrap();
        assert_eq!(par.len(), seq.len());
        for (a, b) in par.iter().zip(seq.iter()) {
            for (x, y) in a.flows.iter().zip(b.flows.iter()) {
                assert_eq!(x.emitted, y.emitted);
                assert_eq!(x.max_delay, y.max_delay);
                assert_eq!(x.delivered, y.delivered);
            }
        }
    }

    #[test]
    fn worst_delay_across_seeds() {
        let t = builders::tandem(2, int(1), rat(3, 16), builders::TandemOptions::default());
        let models = vec![
            SourceModel::OnOff {
                on: 3,
                off: 5,
                phase: 0
            };
            t.net.flows().len()
        ];
        let cfg = SimConfig {
            ticks: 1024,
            ..SimConfig::default()
        };
        let reports = collect_reports(seed_sweep(&t.net, &models, &cfg, &[1, 2, 3], 3)).unwrap();
        let w = worst_delay(&reports, t.conn0.0);
        assert!(reports.iter().all(|r| r.flows[t.conn0.0].max_delay <= w));
    }

    #[test]
    fn panicking_job_fails_alone() {
        // Job 1 carries a model list of the wrong length, which trips the
        // engine's `models.len() == flows.len()` assertion. The batch must
        // surface that as a per-job error and still run jobs 0 and 2.
        let t = builders::tandem(2, int(1), rat(1, 8), builders::TandemOptions::default());
        let good = vec![SourceModel::Bernoulli { num: 1, den: 3 }; t.net.flows().len()];
        let cfg = SimConfig {
            ticks: 256,
            ..SimConfig::default()
        };
        let jobs = vec![
            BatchJob {
                models: good.clone(),
                cfg: cfg.clone(),
            },
            BatchJob {
                models: vec![SourceModel::Greedy],
                cfg: cfg.clone(),
            },
            BatchJob {
                models: good.clone(),
                cfg: cfg.clone(),
            },
        ];
        let results = run_batch(&t.net, &jobs, 2);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok(), "healthy job 0 must survive");
        assert!(results[2].is_ok(), "healthy job 2 must survive");
        let err = results[1].as_ref().unwrap_err();
        assert!(
            err.contains("panicked"),
            "job 1 should report the panic, got: {err}"
        );
        // And the aggregate view names the failing job.
        let agg = collect_reports(results).unwrap_err();
        assert!(agg.starts_with("job 1:"), "got: {agg}");
    }

    #[test]
    fn collect_reports_passes_clean_batches_through() {
        let t = builders::tandem(1, int(1), rat(1, 8), builders::TandemOptions::default());
        let models = vec![SourceModel::Greedy; t.net.flows().len()];
        let cfg = SimConfig {
            ticks: 128,
            ..SimConfig::default()
        };
        let results = seed_sweep(&t.net, &models, &cfg, &[1, 2], 2);
        let reports = collect_reports(results).expect("clean batch");
        assert_eq!(reports.len(), 2);
    }
}
