//! Property test: the engine's incremental fast path is observationally
//! indistinguishable from honest from-scratch certification. Two engines
//! — one with `incremental: true` and parallel workers, one with
//! `incremental: false` and a single thread — process the same
//! randomized admit/release sequence and must return identical answers
//! (exact `Rat` bounds included) and land on identical canonical state.

use dnc_net::builders::{tandem, TandemOptions};
use dnc_net::ServerId;
use dnc_num::Rat;
use dnc_service::{AdmitRequest, ChurnEngine, EngineConfig, Request, Response};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Exact answer fingerprint: every field of the response, with bounds
/// and deadlines as exact rationals. `Debug` is stable and loss-free
/// here because no response field carries wall-clock time.
fn fingerprint(r: &Response) -> String {
    format!("{r:?}")
}

fn draw_requests(seed: u64, n: usize, ops: usize) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next = 0usize;
    // Assumed-live model: releases may name an already-rejected flow —
    // both engines must then refuse identically.
    let mut assumed: Vec<String> = Vec::new();
    (0..ops)
        .map(|_| {
            if assumed.is_empty() || rng.gen_ratio(3, 5) {
                next += 1;
                let name = format!("p{next}");
                assumed.push(name.clone());
                let start = rng.gen_range(0..n);
                let len = rng.gen_range(1..=(n - start).min(3));
                Request::Admit(AdmitRequest {
                    name,
                    route: (start..start + len).map(ServerId).collect(),
                    buckets: vec![(
                        Rat::from(rng.gen_range(1i64..=3)),
                        Rat::new(rng.gen_range(1i128..=3), 40),
                    )],
                    peak: None,
                    priority: 1,
                    deadline: Rat::from(rng.gen_range(4i64..=120)),
                })
            } else {
                let victim = rng.gen_range(0..assumed.len());
                Request::Release {
                    name: assumed.remove(victim),
                }
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn incremental_engine_is_indistinguishable(seed in 0u64..1 << 32) {
        let n = 4;
        let base = tandem(n, Rat::ONE, Rat::new(1, 16), TandemOptions::default()).net;
        let mk = |workers: usize, incremental: bool| {
            ChurnEngine::new(
                base.clone(),
                Vec::new(),
                EngineConfig {
                    workers,
                    incremental,
                    ..EngineConfig::default()
                },
            )
            .expect("base tandem certifies")
        };
        let mut fast = mk(2, true);
        let mut scratch = mk(1, false);

        for (step, req) in draw_requests(seed, n, 24).into_iter().enumerate() {
            let a = fast.process(req.clone()).expect("volatile engine cannot fail");
            let b = scratch.process(req).expect("volatile engine cannot fail");
            prop_assert_eq!(
                fingerprint(&a),
                fingerprint(&b),
                "step {} answered differently", step
            );
        }
        prop_assert_eq!(fast.canonical_state(), scratch.canonical_state());
        prop_assert_eq!(fast.state_digest(), scratch.state_digest());
    }
}
