//! Property test: snapshot compaction is observationally invisible.
//!
//! For a random admit/release sequence and a random snapshot cadence,
//! an engine that snapshots-and-rotates must answer identically to one
//! that keeps the full journal, and — the durability half — recovery
//! from `snapshot + journal tail` must land on exactly the state that
//! full-journal replay lands on, Rat-exact (the canonical state encodes
//! every rational verbatim, and the digests hash that text).

use dnc_net::builders::{tandem, TandemOptions};
use dnc_net::ServerId;
use dnc_num::Rat;
use dnc_service::{AdmitRequest, ChurnEngine, EngineConfig, Request};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

fn draw_requests(seed: u64, n: usize, ops: usize) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next = 0usize;
    let mut assumed: Vec<String> = Vec::new();
    (0..ops)
        .map(|_| {
            if assumed.is_empty() || rng.gen_ratio(3, 5) {
                next += 1;
                let name = format!("p{next}");
                assumed.push(name.clone());
                let start = rng.gen_range(0..n);
                let len = rng.gen_range(1..=(n - start).min(3));
                Request::Admit(AdmitRequest {
                    name,
                    route: (start..start + len).map(ServerId).collect(),
                    buckets: vec![(
                        Rat::from(rng.gen_range(1i64..=3)),
                        Rat::new(rng.gen_range(1i128..=3), 40),
                    )],
                    peak: None,
                    priority: 1,
                    deadline: Rat::from(rng.gen_range(4i64..=120)),
                })
            } else {
                let victim = rng.gen_range(0..assumed.len());
                Request::Release {
                    name: assumed.remove(victim),
                }
            }
        })
        .collect()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dnc_prop_snap_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn snapshot_plus_tail_replay_equals_full_replay(
        seed in 0u64..1 << 32,
        every in 1u64..=5,
    ) {
        let n = 4;
        let base = tandem(n, Rat::ONE, Rat::new(1, 16), TandemOptions::default()).net;
        let dir = scratch(&format!("{seed}_{every}"));
        let full_wal = dir.join("full.wal");
        let snap_wal = dir.join("snap.wal");
        let cfg = |snapshot_every| EngineConfig {
            snapshot_every,
            ..EngineConfig::default()
        };

        let (mut full, _) =
            ChurnEngine::open(base.clone(), Vec::new(), cfg(None), &full_wal).unwrap();
        let (mut compacted, _) =
            ChurnEngine::open(base.clone(), Vec::new(), cfg(Some(every)), &snap_wal).unwrap();

        for (step, req) in draw_requests(seed, n, 16).into_iter().enumerate() {
            let a = full.process(req.clone()).expect("real backend cannot fault");
            let b = compacted.process(req).expect("real backend cannot fault");
            prop_assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "step {} answered differently under compaction", step
            );
        }
        let live_digest = full.state_digest();
        prop_assert_eq!(compacted.state_digest(), live_digest);
        let committed = full.committed_seq();
        prop_assert_eq!(compacted.committed_seq(), committed);
        drop(full);
        drop(compacted);

        // Recovery equivalence: full-journal replay and snapshot+tail
        // replay land on the identical canonical state.
        let (rec_full, info_full) =
            ChurnEngine::open(base.clone(), Vec::new(), cfg(None), &full_wal).unwrap();
        let (rec_snap, info_snap) =
            ChurnEngine::open(base, Vec::new(), cfg(Some(every)), &snap_wal).unwrap();
        prop_assert_eq!(rec_full.state_digest(), live_digest);
        prop_assert_eq!(rec_snap.state_digest(), live_digest);
        prop_assert_eq!(
            rec_full.canonical_state(),
            rec_snap.canonical_state(),
            "canonical states must match Rat-exactly"
        );
        prop_assert_eq!(info_full.committed_seq, committed);
        prop_assert_eq!(info_snap.committed_seq, committed);

        // The compaction bound: the snapshot engine replays only the
        // tail past its newest snapshot.
        if let Some((_, snap_seq)) = info_snap.snapshot {
            prop_assert_eq!(info_snap.ops_replayed as u64, committed - snap_seq);
            prop_assert!(
                (info_snap.ops_replayed as u64) < every.max(1) * 2,
                "tail replay ({} ops) must be bounded by the cadence ({})",
                info_snap.ops_replayed,
                every
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
