//! Property test: under any interleaving of K concurrent socket
//! clients, the journal's committed sequence is a *serial order of
//! exactly the acknowledged operations* —
//!
//! * every acknowledged admit/release appears in the journal exactly
//!   once, and nothing else does (no unacknowledged operation anywhere
//!   in the committed sequence, in particular never ahead of an
//!   acknowledged one);
//! * each client's acknowledged operations appear in the journal in
//!   that client's acknowledgment order (the serial order is consistent
//!   with every per-connection history);
//! * folding the journal into a fresh engine reproduces the served
//!   engine's state bit-for-bit.
//!
//! The interleaving is real: K OS threads pipeline randomized workloads
//! through the TCP front end while the commit loop group-commits
//! whatever arrives together, so batch boundaries shift run to run —
//! the invariants may not depend on them.

use dnc_service::server::{run, ServerConfig};
use dnc_service::{ChurnEngine, EngineConfig, Journal, Op, Request, Response};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dnc_group_commit_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(format!("{tag}.wal"))
}

fn base() -> dnc_net::Network {
    let mut net = dnc_net::Network::new();
    net.add_server(dnc_net::Server::unit_fifo("hop0"));
    net
}

fn decode(line: &str) -> Result<Request, String> {
    match Op::decode(line) {
        Ok(Op::Admit(a)) => Ok(Request::Admit(a.into())),
        Ok(Op::Release { name }) => Ok(Request::Release { name }),
        Err(e) => Err(format!("ERR {e}")),
    }
}

fn render(r: &Response) -> String {
    match r {
        Response::Admitted { name, .. } => format!("ADMIT {name}"),
        Response::Rejected { name, .. } => format!("REJECT {name}"),
        Response::Released { name } => format!("RELEASE {name}"),
        Response::ReleaseFailed { name, .. } => format!("RELFAIL {name}"),
        Response::Queried { entries } => format!("QUERY {}", entries.len()),
        Response::Shed { name, .. } => format!("SHED {name}"),
    }
}

/// One client's randomized workload: admits of its own names (generous
/// deadlines — they certify), releases of its own live names, and the
/// occasional release of a name nobody admitted (refused, and it must
/// stay out of the journal).
fn client_lines(seed: u64, client: usize, ops: usize) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed ^ (client as u64).wrapping_mul(0x9E37_79B9));
    let mut live: Vec<usize> = Vec::new();
    let mut next = 0usize;
    (0..ops)
        .map(|_| {
            if rng.gen_ratio(1, 8) {
                format!("release ghost_c{client}_{}", rng.gen_range(0..1000u32))
            } else if live.is_empty() || rng.gen_ratio(3, 5) {
                next += 1;
                live.push(next);
                format!(
                    "admit c{client}n{next} deadline {} prio 0 peak - route 0 buckets 1 1/4096",
                    rng.gen_range(500..2000u32)
                )
            } else {
                let k = rng.gen_range(0..live.len());
                format!("release c{client}n{}", live.remove(k))
            }
        })
        .collect()
}

/// Pipeline `lines` through one connection; return one reply per line.
fn session(addr: std::net::SocketAddr, lines: &[String]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut w = stream.try_clone().expect("clone");
    let mut script = String::new();
    for l in lines {
        script.push_str(l);
        script.push('\n');
    }
    w.write_all(script.as_bytes()).expect("send");
    w.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    let mut replies = Vec::with_capacity(lines.len());
    let mut buf = String::new();
    for _ in 0..lines.len() {
        buf.clear();
        let n = reader.read_line(&mut buf).expect("reply");
        assert!(n > 0, "connection closed before all replies arrived");
        replies.push(buf.trim().to_string());
    }
    replies
}

/// The canonical identity of a request line for cross-checking against
/// journal contents: its `Op::encode` form.
fn op_identity(line: &str) -> String {
    Op::decode(line)
        .expect("client lines are valid ops")
        .encode()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn any_interleaving_replays_as_a_serial_order_of_acknowledged_ops(
        seed in 0u64..1 << 32,
        batch in 1usize..=8,
    ) {
        const CLIENTS: usize = 4;
        const OPS: usize = 10;
        let wal = scratch(&format!("s{seed}b{batch}"));
        let _ = std::fs::remove_file(&wal);
        let (engine, _) = ChurnEngine::open(base(), Vec::new(), EngineConfig::default(), &wal)
            .expect("fresh journal opens");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let cfg = ServerConfig {
            batch,
            queue_capacity: CLIENTS * OPS + 8, // no sheds: every op gets a real answer
            drain_timeout: Duration::from_secs(30),
            ..ServerConfig::default()
        };
        let server = std::thread::spawn(move || {
            run(
                listener,
                engine,
                cfg,
                Arc::new(decode),
                Arc::new(render),
                Arc::new(AtomicBool::new(false)),
            )
        });

        let workloads: Vec<Vec<String>> =
            (0..CLIENTS).map(|c| client_lines(seed, c, OPS)).collect();
        let clients: Vec<_> = workloads
            .iter()
            .map(|lines| {
                let lines = lines.clone();
                std::thread::spawn(move || session(addr, &lines))
            })
            .collect();
        let replies: Vec<Vec<String>> = clients
            .into_iter()
            .map(|c| c.join().expect("client thread"))
            .collect();

        // Drain and recover the served state.
        session(addr, &["shutdown".to_string()]);
        let (served, report) = server.join().expect("server thread").expect("serve ok");
        prop_assert!(report.drained_clean, "drain timed out: {report:?}");
        prop_assert_eq!(report.sheds, 0, "queue was sized to never shed");

        // Acknowledged ops per client, in acknowledgment order.
        let mut acked_per_client: Vec<Vec<String>> = Vec::with_capacity(CLIENTS);
        for (lines, replies) in workloads.iter().zip(&replies) {
            let mut acked = Vec::new();
            for (line, reply) in lines.iter().zip(replies) {
                if reply.starts_with("ADMIT ") || reply.starts_with("RELEASE ") {
                    acked.push(op_identity(line));
                } else {
                    prop_assert!(
                        reply.starts_with("RELFAIL ") || reply.starts_with("REJECT "),
                        "unexpected reply {reply:?} to {line:?}"
                    );
                }
            }
            acked_per_client.push(acked);
        }

        // The journal's committed sequence, as op identities.
        let (_, replay) = Journal::resume(&wal).expect("journal replays");
        prop_assert!(replay.tail.is_none(), "clean shutdown left a torn tail");
        let journal: Vec<String> = replay.ops.iter().map(Op::encode).collect();

        // (1) Exactly the acknowledged ops, nothing else: same multiset.
        let mut want: Vec<&String> = acked_per_client.iter().flatten().collect();
        let mut got: Vec<&String> = journal.iter().collect();
        want.sort();
        got.sort();
        prop_assert_eq!(
            got, want,
            "journal is not exactly the acknowledged set (seed {seed}, batch {batch})"
        );

        // (2) Consistent with every per-connection history: client c's
        // ops appear in the journal in c's acknowledgment order.
        for (c, acked) in acked_per_client.iter().enumerate() {
            let prefix = format!("c{c}n");
            let in_journal: Vec<&String> = journal
                .iter()
                .filter(|op| op.split_whitespace().nth(1).is_some_and(|n| n.starts_with(&prefix)))
                .collect();
            let in_acks: Vec<&String> = acked.iter().collect();
            prop_assert_eq!(
                in_journal, in_acks,
                "client {c}'s journal order diverges from its ack order"
            );
        }

        // (3) Folding the journal reproduces the served state.
        let (recovered, _) = ChurnEngine::open(base(), Vec::new(), EngineConfig::default(), &wal)
            .expect("journal recovers");
        prop_assert_eq!(recovered.state_digest(), served.state_digest());
        let _ = std::fs::remove_file(&wal);
    }
}
