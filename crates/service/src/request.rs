//! The churn engine's request vocabulary.

use crate::journal::AdmitOp;
use dnc_net::ServerId;
use dnc_num::Rat;

/// A connection admission request: the traffic contract, the route, and
/// the end-to-end deadline to certify.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdmitRequest {
    /// Connection name — the engine's identity for later release
    /// (non-empty, no whitespace, unique among live flows).
    pub name: String,
    /// Route as server indices into the base network.
    pub route: Vec<ServerId>,
    /// Token buckets `(σ, ρ)`; at least one, non-negative.
    pub buckets: Vec<(Rat, Rat)>,
    /// Optional peak-rate cap (positive).
    pub peak: Option<Rat>,
    /// Priority for static-priority servers (lower = more urgent).
    pub priority: u8,
    /// End-to-end deadline, in ticks.
    pub deadline: Rat,
}

impl From<AdmitRequest> for AdmitOp {
    fn from(r: AdmitRequest) -> AdmitOp {
        AdmitOp {
            name: r.name,
            route: r.route,
            buckets: r.buckets,
            peak: r.peak,
            priority: r.priority,
            deadline: r.deadline,
        }
    }
}

impl From<AdmitOp> for AdmitRequest {
    fn from(op: AdmitOp) -> AdmitRequest {
        AdmitRequest {
            name: op.name,
            route: op.route,
            buckets: op.buckets,
            peak: op.peak,
            priority: op.priority,
            deadline: op.deadline,
        }
    }
}

/// One request to the churn engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Admit a new connection if every affected deadline certifies.
    Admit(AdmitRequest),
    /// Release a previously admitted connection by name.
    Release {
        /// The name given at admission.
        name: String,
    },
    /// Read-only: report the admitted set (or one connection).
    Query {
        /// `None` lists everything.
        name: Option<String>,
    },
}
