//! Crash-safe snapshots and journal compaction.
//!
//! A snapshot is the engine's canonical committed state — base-flow
//! count plus every currently admitted connection — captured at a
//! committed sequence number `seq` and tagged with a monotonically
//! increasing generation `gen`. Publishing one bounds recovery cost:
//! after a snapshot at `seq`, recovery folds the snapshot and replays
//! only the journal *tail* past `seq`, not lifetime history.
//!
//! ## On-disk format
//!
//! ```text
//! +--------+  "DNCS1\n" magic + version (6 bytes)
//! | record |  u32 LE payload length
//! |        |  u32 LE CRC-32 (IEEE) of the payload bytes
//! |        |  payload:
//! |        |    snapshot gen <g> seq <s> base <b>
//! |        |    admit <name> deadline ...      (one line per admitted)
//! +--------+
//! ```
//!
//! One CRC-framed record, same framing discipline as the journal but a
//! distinct magic: a snapshot is never a journal and vice versa. The
//! admit lines reuse [`Op::encode`], so rationals stay exact.
//!
//! ## Atomic publish
//!
//! [`publish_snapshot`] writes the image to `<final>.tmp`, fsyncs it,
//! atomically renames it to `<journal>.snap.<gen>`, and fsyncs the
//! parent directory. A crash at any point leaves either no new
//! snapshot, an ignorable `.tmp`, or a complete valid snapshot — never
//! a half-written file under the final name. After a publish the
//! journal rotates (see [`Journal::rotate`]): the old segment moves to
//! `<journal>.prev` and a fresh segment opens with an epoch record
//! pointing past the snapshot.
//!
//! ## Recovery
//!
//! [`recover`] inventories the directory — snapshots newest-first, the
//! active journal segment, the `.prev` segment a mid-rotation crash may
//! leave — and picks the newest *valid* snapshot whose `seq` lands
//! inside the surviving segment chain. A torn snapshot (bad CRC, torn
//! frame) is skipped in favor of the previous one or full replay; a
//! tail segment with no covering snapshot is refused rather than
//! replayed into a silently wrong state.

use crate::fs::StorageFs;
use crate::journal::{
    self, frame_record, parent_dir, sibling, AdmitOp, Journal, JournalError, Op, Replay, TailDefect,
};
use std::fmt;
use std::fs::File;
use std::io::{self, Read};
use std::path::{Path, PathBuf};

/// Magic header: snapshot format name + version byte + newline.
const SNAP_MAGIC: &[u8; 6] = b"DNCS1\n";

/// Upper bound on a snapshot payload (a quarter GiB of admit lines is
/// far past any realistic admitted set; larger is corruption).
const MAX_SNAPSHOT: u32 = 1 << 28;

/// Canonical committed state at a point in the commit sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Monotonic snapshot generation (1-based; 0 means "none yet").
    pub gen: u64,
    /// Committed operations folded into this snapshot.
    pub seq: u64,
    /// Base-flow count of the network the state was built against —
    /// recovery refuses a snapshot taken over a different base.
    pub base_flows: usize,
    /// Every admitted connection, in admission order.
    pub admits: Vec<AdmitOp>,
}

/// Errors raised by snapshot encoding, decoding, and publication.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// The file is not a decodable snapshot (torn, corrupt, or wrong
    /// format) — recoverable by falling back to an older generation.
    Bad(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Bad(m) => write!(f, "invalid snapshot: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

impl Snapshot {
    /// Encode the payload text (header line + admit lines).
    pub fn encode(&self) -> String {
        let mut s = format!(
            "snapshot gen {} seq {} base {}",
            self.gen, self.seq, self.base_flows
        );
        for a in &self.admits {
            s.push('\n');
            s.push_str(&Op::Admit(a.clone()).encode());
        }
        s
    }

    /// Decode a payload produced by [`Snapshot::encode`].
    pub fn decode(text: &str) -> Result<Snapshot, SnapshotError> {
        let bad = |m: &str| SnapshotError::Bad(m.to_string());
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| bad("empty payload"))?;
        let mut toks = header.split_whitespace();
        if toks.next() != Some("snapshot") {
            return Err(bad("missing `snapshot` header"));
        }
        let mut field = |kw: &str| -> Result<u64, SnapshotError> {
            if toks.next() != Some(kw) {
                return Err(SnapshotError::Bad(format!("expected `{kw}` in header")));
            }
            toks.next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| SnapshotError::Bad(format!("invalid `{kw}` value")))
        };
        let gen = field("gen")?;
        let seq = field("seq")?;
        let base_flows = field("base")? as usize;
        if toks.next().is_some() {
            return Err(bad("trailing tokens in header"));
        }
        let mut admits = Vec::new();
        for line in lines {
            match Op::decode(line) {
                Ok(Op::Admit(a)) => admits.push(a),
                Ok(Op::Release { .. }) => {
                    return Err(bad("release line in a snapshot (admits only)"))
                }
                Err(e) => return Err(SnapshotError::Bad(format!("bad admit line: {e}"))),
            }
        }
        Ok(Snapshot {
            gen,
            seq,
            base_flows,
            admits,
        })
    }
}

/// The final path of the generation-`gen` snapshot beside
/// `journal_path`. Zero-padded so lexicographic order is generation
/// order.
pub fn snapshot_path(journal_path: &Path, gen: u64) -> PathBuf {
    sibling(journal_path, &format!("snap.{gen:020}"))
}

/// Publish `snap` beside `journal_path` with the atomic-publish
/// protocol: temp-file write → fsync → rename into place → parent-dir
/// fsync. Returns the final path.
///
/// # Errors
/// Any storage failure mid-protocol. The final name is only ever
/// reached by a complete, synced image, so a failure leaves at worst a
/// stale `.tmp` that recovery removes.
pub fn publish_snapshot(
    fs: &dyn StorageFs,
    journal_path: &Path,
    snap: &Snapshot,
) -> Result<PathBuf, SnapshotError> {
    let payload = snap.encode();
    if payload.len() > MAX_SNAPSHOT as usize {
        return Err(SnapshotError::Bad(
            "snapshot payload exceeds the record cap".into(),
        ));
    }
    let final_path = snapshot_path(journal_path, snap.gen);
    let tmp = sibling(&final_path, "tmp");
    let mut buf = SNAP_MAGIC.to_vec();
    buf.extend_from_slice(&frame_record(payload.as_bytes()));
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)?;
    fs.write(&mut file, &buf)?;
    fs.sync_data(&file)?;
    fs.rename(&tmp, &final_path)?;
    fs.sync_dir(parent_dir(&final_path))?;
    Ok(final_path)
}

/// Decode the snapshot file at `path`.
pub fn load_snapshot(path: &Path) -> Result<Snapshot, SnapshotError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    decode_snapshot_bytes(&bytes)
}

fn decode_snapshot_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    let bad = |m: &str| SnapshotError::Bad(m.to_string());
    if !bytes.starts_with(SNAP_MAGIC) {
        return Err(bad("bad magic"));
    }
    let rest = bytes.get(SNAP_MAGIC.len()..).unwrap_or(&[]);
    let (Some(len), Some(crc)) = (journal::read_u32(rest, 0), journal::read_u32(rest, 4)) else {
        return Err(bad("torn record frame"));
    };
    if len > MAX_SNAPSHOT {
        return Err(bad("oversized payload length"));
    }
    let payload = rest
        .get(8..8 + len as usize)
        .ok_or_else(|| bad("torn payload"))?;
    if rest.len() != 8 + len as usize {
        return Err(bad("trailing bytes after the record"));
    }
    if journal::crc32(payload) != crc {
        return Err(bad("checksum mismatch"));
    }
    let text = std::str::from_utf8(payload).map_err(|_| bad("payload is not UTF-8"))?;
    Snapshot::decode(text)
}

/// Inventory the snapshots beside `journal_path`, newest generation
/// first, by file name only (no decoding).
pub fn scan_snapshots(journal_path: &Path) -> Vec<(u64, PathBuf)> {
    let dir = parent_dir(journal_path);
    let prefix = {
        let mut p = journal_path
            .file_name()
            .unwrap_or_default()
            .to_string_lossy()
            .into_owned();
        p.push_str(".snap.");
        p
    };
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return found;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(gen_str) = name.strip_prefix(&prefix) else {
            continue;
        };
        let Ok(gen) = gen_str.parse::<u64>() else {
            continue; // e.g. a stale `<gen>.tmp` — not a published snapshot
        };
        found.push((gen, entry.path()));
    }
    found.sort_by_key(|&(gen, _)| std::cmp::Reverse(gen));
    found
}

/// Remove snapshot generations at or below `current_gen - 2`, keeping
/// the current and previous generations as fallback. (Stale publish
/// staging files are removed by [`recover`].) Errors are ignored:
/// pruning is hygiene, and a faulted backend surfaces at the next
/// durability-critical call.
pub fn prune_snapshots(fs: &dyn StorageFs, journal_path: &Path, current_gen: u64) {
    for (gen, path) in scan_snapshots(journal_path) {
        if gen + 2 <= current_gen {
            let _ = fs.remove_file(&path);
        }
    }
}

/// A recovery plan: the reopened journal plus everything needed to
/// rebuild and report the committed state.
#[derive(Debug)]
pub struct Recovered {
    /// The active journal, truncated past any torn tail and positioned
    /// for appends.
    pub journal: Journal,
    /// The snapshot recovery chose to fold, if any.
    pub snapshot: Option<Snapshot>,
    /// Committed operations past the snapshot, in commit order.
    pub tail_ops: Vec<Op>,
    /// Total committed operations across the whole history.
    pub committed_seq: u64,
    /// Highest snapshot generation seen on disk or in the journal
    /// epoch — the next snapshot must use `gen + 1`.
    pub gen: u64,
    /// Valid byte length of the active journal segment.
    pub valid_len: u64,
    /// The active segment's tail defect, if a torn tail was truncated.
    pub tail: Option<(TailDefect, u64)>,
    /// Snapshots passed over because they were torn, corrupt, or did
    /// not land inside the surviving segment chain.
    pub snapshots_skipped: usize,
}

/// Errors raised while planning recovery.
#[derive(Debug)]
pub enum RecoverError {
    /// The journal itself failed to open or replay.
    Journal(JournalError),
    /// The on-disk layout is uninterpretable: replaying it could
    /// silently drop acknowledged operations, so recovery refuses.
    Layout(String),
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Journal(e) => write!(f, "{e}"),
            RecoverError::Layout(m) => write!(f, "unrecoverable storage layout: {m}"),
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<JournalError> for RecoverError {
    fn from(e: JournalError) -> RecoverError {
        RecoverError::Journal(e)
    }
}

/// Plan recovery for the journal at `path`: clean publish/rotation
/// staging debris, reopen (or re-create) the active segment, stitch in
/// the `.prev` segment a mid-rotation crash may have left, and choose
/// the newest valid snapshot that lands inside the surviving chain.
pub fn recover(path: &Path, fs: crate::fs::StorageHandle) -> Result<Recovered, RecoverError> {
    // Staging debris is never authoritative: `<journal>.new` only
    // becomes real by renaming over the journal, `*.tmp` only by
    // renaming to a snapshot name. Cleanup runs on the real std::fs —
    // it precedes the replayed fault window. A stale tmp may belong to
    // a generation that was never published, so sweep by name pattern
    // rather than by the published-snapshot inventory.
    let _ = std::fs::remove_file(sibling(path, "new"));
    if let Ok(entries) = std::fs::read_dir(parent_dir(path)) {
        let stem = path
            .file_name()
            .unwrap_or_default()
            .to_string_lossy()
            .into_owned();
        let snap_prefix = format!("{stem}.snap.");
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(&snap_prefix) && name.ends_with(".tmp") {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }

    let candidates = scan_snapshots(path);
    let newest_gen_on_disk = candidates.first().map_or(0, |(g, _)| *g);

    // Reopen the active segment. If it vanished mid-rotation (moved
    // aside, replacement never renamed in), re-create it pointing past
    // the newest snapshot — the rotation protocol publishes the
    // snapshot before touching the journal, so that snapshot covers
    // every op the moved-aside segment held.
    let mut snapshots_skipped = 0usize;
    let (journal, active): (Journal, Replay) = if path.exists() {
        Journal::resume_with(path, fs)?
    } else {
        let mut restart: Option<Snapshot> = None;
        for (_, snap_path) in &candidates {
            match load_snapshot(snap_path) {
                Ok(s) => {
                    restart = Some(s);
                    break;
                }
                Err(_) => snapshots_skipped += 1,
            }
        }
        let prev_exists = sibling(path, "prev").exists();
        match restart {
            Some(s) => {
                let j = Journal::create_at(path, fs, s.gen, s.seq)?;
                let r = journal::replay(path)?;
                (j, r)
            }
            None if prev_exists => {
                return Err(RecoverError::Layout(
                    "active journal segment is missing and no valid snapshot covers the \
                     moved-aside segment"
                        .into(),
                ));
            }
            None => {
                let (j, r) = Journal::resume_with(path, fs)?;
                (j, r)
            }
        }
    };

    let base = active.base_seq;
    let committed_seq = base + active.ops.len() as u64;

    // The `.prev` segment is usable only if its end meets the active
    // segment's base exactly — otherwise ops would be missing between
    // the two and nothing built on it can be trusted.
    let prev_path = sibling(path, "prev");
    let prev: Option<Replay> = if prev_path.exists() {
        journal::replay(&prev_path)
            .ok()
            .filter(|p| p.base_seq + p.ops.len() as u64 == base)
    } else {
        None
    };

    // Newest-first: the first valid snapshot whose seq lands inside the
    // surviving chain wins. Torn and out-of-range snapshots are skipped
    // (counted), falling back toward older generations or full replay.
    let mut chosen: Option<(Snapshot, Vec<Op>)> = None;
    for (_, snap_path) in &candidates {
        let s = match load_snapshot(snap_path) {
            Ok(s) => s,
            Err(_) => {
                snapshots_skipped += 1;
                continue;
            }
        };
        if s.seq >= base && s.seq <= committed_seq {
            let at = (s.seq - base) as usize;
            let tail_ops = active.ops.get(at..).unwrap_or(&[]).to_vec();
            chosen = Some((s, tail_ops));
            break;
        }
        if let Some(p) = &prev {
            if s.seq >= p.base_seq && s.seq < base {
                let at = (s.seq - p.base_seq) as usize;
                let mut tail_ops = p.ops.get(at..).unwrap_or(&[]).to_vec();
                tail_ops.extend(active.ops.iter().cloned());
                chosen = Some((s, tail_ops));
                break;
            }
        }
        snapshots_skipped += 1;
    }

    let (snapshot, tail_ops) = match chosen {
        Some((s, t)) => (Some(s), t),
        None => {
            // Full replay is only sound if the surviving chain starts
            // at sequence zero.
            if base == 0 {
                (None, active.ops.clone())
            } else if let Some(p) = &prev {
                if p.base_seq == 0 {
                    let mut t = p.ops.clone();
                    t.extend(active.ops.iter().cloned());
                    (None, t)
                } else {
                    return Err(RecoverError::Layout(format!(
                        "journal is a tail segment (base seq {}) but no valid snapshot covers \
                         its base",
                        p.base_seq
                    )));
                }
            } else {
                return Err(RecoverError::Layout(format!(
                    "journal is a tail segment (base seq {base}) but no valid snapshot covers \
                     its base"
                )));
            }
        }
    };

    let gen = newest_gen_on_disk
        .max(active.gen)
        .max(snapshot.as_ref().map_or(0, |s| s.gen));

    Ok(Recovered {
        journal,
        snapshot,
        tail_ops,
        committed_seq,
        gen,
        valid_len: active.valid_len,
        tail: active.tail,
        snapshots_skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{FaultFs, FAULT_KINDS};
    use dnc_net::ServerId;
    use dnc_num::{int, rat};
    use std::sync::Arc;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dnc_snap_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn admit(name: &str) -> AdmitOp {
        AdmitOp {
            name: name.into(),
            route: vec![ServerId(0), ServerId(1)],
            buckets: vec![(int(1), rat(1, 8))],
            peak: None,
            priority: 1,
            deadline: rat(31, 2),
        }
    }

    fn sample(gen: u64, seq: u64) -> Snapshot {
        Snapshot {
            gen,
            seq,
            base_flows: 2,
            admits: vec![admit("a"), admit("b")],
        }
    }

    #[test]
    fn snapshot_round_trips_through_publish_and_load() {
        let dir = tmpdir("round");
        let jpath = dir.join("engine.wal");
        let snap = sample(1, 7);
        let path = publish_snapshot(&crate::fs::RealFs, &jpath, &snap).unwrap();
        assert_eq!(path, snapshot_path(&jpath, 1));
        assert_eq!(load_snapshot(&path).unwrap(), snap);
        assert!(!sibling(&path, "tmp").exists(), "tmp must be renamed away");
    }

    #[test]
    fn decode_rejects_damage() {
        let dir = tmpdir("damage");
        let jpath = dir.join("engine.wal");
        let path = publish_snapshot(&crate::fs::RealFs, &jpath, &sample(1, 3)).unwrap();
        let good = std::fs::read(&path).unwrap();
        // Truncations and a flipped payload byte must all be rejected.
        for cut in 0..good.len() {
            assert!(
                decode_snapshot_bytes(&good[..cut]).is_err(),
                "truncation to {cut} must not decode"
            );
        }
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(decode_snapshot_bytes(&flipped).is_err());
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_snapshot_bytes(&trailing).is_err());
    }

    #[test]
    fn publish_is_atomic_under_every_fault_site() {
        // Whatever site a fault hits, the final name holds either
        // nothing or a complete, decodable snapshot.
        for kind in FAULT_KINDS {
            for site in 0..4u64 {
                let dir = tmpdir("atomic");
                let jpath = dir.join("engine.wal");
                let fs = FaultFs::new(site, kind);
                let snap = sample(1, 5);
                let result = publish_snapshot(&fs, &jpath, &snap);
                let final_path = snapshot_path(&jpath, 1);
                match result {
                    Ok(p) => assert_eq!(load_snapshot(&p).unwrap(), snap),
                    Err(_) => {
                        if final_path.exists() {
                            assert_eq!(
                                load_snapshot(&final_path).unwrap(),
                                snap,
                                "{kind} at site {site}: a file under the final name must be \
                                 complete"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn scan_orders_newest_first_and_ignores_debris() {
        let dir = tmpdir("scan");
        let jpath = dir.join("engine.wal");
        for gen in [1u64, 3, 2] {
            publish_snapshot(&crate::fs::RealFs, &jpath, &sample(gen, gen * 10)).unwrap();
        }
        std::fs::write(sibling(&snapshot_path(&jpath, 4), "tmp"), b"junk").unwrap();
        std::fs::write(dir.join("unrelated.txt"), b"junk").unwrap();
        let gens: Vec<u64> = scan_snapshots(&jpath).into_iter().map(|(g, _)| g).collect();
        assert_eq!(gens, vec![3, 2, 1]);
    }

    #[test]
    fn prune_keeps_current_and_previous_generations() {
        let dir = tmpdir("prune");
        let jpath = dir.join("engine.wal");
        for gen in 1..=4u64 {
            publish_snapshot(&crate::fs::RealFs, &jpath, &sample(gen, gen)).unwrap();
        }
        prune_snapshots(&crate::fs::RealFs, &jpath, 4);
        let gens: Vec<u64> = scan_snapshots(&jpath).into_iter().map(|(g, _)| g).collect();
        assert_eq!(gens, vec![4, 3]);
    }

    #[test]
    fn recover_prefers_newest_snapshot_and_replays_only_the_tail() {
        let dir = tmpdir("recover_tail");
        let jpath = dir.join("engine.wal");
        let mut j = Journal::create(&jpath).unwrap();
        j.append(&Op::Admit(admit("a"))).unwrap();
        j.append(&Op::Admit(admit("b"))).unwrap();
        let snap = Snapshot {
            gen: 1,
            seq: 2,
            base_flows: 0,
            admits: vec![admit("a"), admit("b")],
        };
        publish_snapshot(&crate::fs::RealFs, &jpath, &snap).unwrap();
        j.rotate(1, 2).unwrap();
        j.append(&Op::Release { name: "a".into() }).unwrap();
        drop(j);
        let r = recover(&jpath, crate::fs::real()).unwrap();
        assert_eq!(r.snapshot.as_ref().map(|s| (s.gen, s.seq)), Some((1, 2)));
        assert_eq!(r.tail_ops, vec![Op::Release { name: "a".into() }]);
        assert_eq!(r.committed_seq, 3);
        assert_eq!(r.gen, 1);
        assert_eq!(r.snapshots_skipped, 0);
    }

    #[test]
    fn recover_falls_back_past_a_torn_snapshot() {
        let dir = tmpdir("recover_torn");
        let jpath = dir.join("engine.wal");
        let mut j = Journal::create(&jpath).unwrap();
        j.append(&Op::Admit(admit("a"))).unwrap();
        publish_snapshot(
            &crate::fs::RealFs,
            &jpath,
            &Snapshot {
                gen: 1,
                seq: 1,
                base_flows: 0,
                admits: vec![admit("a")],
            },
        )
        .unwrap();
        j.append(&Op::Admit(admit("b"))).unwrap();
        drop(j);
        // Generation 2 exists but is torn: recovery must fall back to
        // generation 1 and replay the one op past it.
        std::fs::write(snapshot_path(&jpath, 2), b"DNCS1\n torn").unwrap();
        let r = recover(&jpath, crate::fs::real()).unwrap();
        assert_eq!(r.snapshot.as_ref().map(|s| s.gen), Some(1));
        assert_eq!(r.tail_ops, vec![Op::Admit(admit("b"))]);
        assert_eq!(r.snapshots_skipped, 1);
        assert_eq!(r.gen, 2, "the torn generation still reserves its number");
    }

    #[test]
    fn recover_stitches_prev_segment_after_mid_rotation_crash() {
        // Crash window: snapshot published, journal moved aside, fresh
        // segment never renamed in. The active journal is missing; the
        // `.prev` segment plus the snapshot must reconstruct state.
        let dir = tmpdir("recover_stitch");
        let jpath = dir.join("engine.wal");
        let mut j = Journal::create(&jpath).unwrap();
        j.append(&Op::Admit(admit("a"))).unwrap();
        j.append(&Op::Admit(admit("b"))).unwrap();
        publish_snapshot(
            &crate::fs::RealFs,
            &jpath,
            &Snapshot {
                gen: 1,
                seq: 2,
                base_flows: 0,
                admits: vec![admit("a"), admit("b")],
            },
        )
        .unwrap();
        drop(j);
        std::fs::rename(&jpath, sibling(&jpath, "prev")).unwrap();
        std::fs::write(sibling(&jpath, "new"), b"DNC").unwrap(); // torn staging
        let r = recover(&jpath, crate::fs::real()).unwrap();
        assert_eq!(r.snapshot.as_ref().map(|s| (s.gen, s.seq)), Some((1, 2)));
        assert!(r.tail_ops.is_empty());
        assert_eq!(r.committed_seq, 2);
        assert!(!sibling(&jpath, "new").exists(), "staging must be cleaned");
        // The re-created journal accepts appends and carries the epoch.
        let mut j = r.journal;
        j.append(&Op::Release { name: "a".into() }).unwrap();
        drop(j);
        let again = recover(&jpath, crate::fs::real()).unwrap();
        assert_eq!(again.committed_seq, 3);
        assert_eq!(again.tail_ops, vec![Op::Release { name: "a".into() }]);
    }

    #[test]
    fn recover_uses_prev_segment_when_snapshot_lands_inside_it() {
        // Crash window: rotation completed but the *next* snapshot was
        // never taken — the newest snapshot's seq falls inside `.prev`.
        // (Normally the snapshot seq equals the rotation point; this
        // exercises the general stitch.)
        let dir = tmpdir("recover_prev_mid");
        let jpath = dir.join("engine.wal");
        let mut j = Journal::create(&jpath).unwrap();
        j.append(&Op::Admit(admit("a"))).unwrap();
        publish_snapshot(
            &crate::fs::RealFs,
            &jpath,
            &Snapshot {
                gen: 1,
                seq: 1,
                base_flows: 0,
                admits: vec![admit("a")],
            },
        )
        .unwrap();
        j.append(&Op::Admit(admit("b"))).unwrap();
        j.rotate(2, 2).unwrap();
        j.append(&Op::Release { name: "a".into() }).unwrap();
        drop(j);
        // Remove the gen-2 snapshot? There is none: rotate(2, 2) was
        // called without publishing gen 2, so gen 1 must stitch across
        // `.prev` (op "b") into the active tail (release "a").
        let r = recover(&jpath, crate::fs::real()).unwrap();
        assert_eq!(r.snapshot.as_ref().map(|s| s.gen), Some(1));
        assert_eq!(
            r.tail_ops,
            vec![Op::Admit(admit("b")), Op::Release { name: "a".into() },]
        );
        assert_eq!(r.committed_seq, 3);
        assert_eq!(r.gen, 2, "journal epoch advances the generation");
    }

    #[test]
    fn recover_refuses_a_tail_segment_with_no_covering_snapshot() {
        let dir = tmpdir("recover_refuse");
        let jpath = dir.join("engine.wal");
        let mut j = Journal::create_at(&jpath, crate::fs::real(), 3, 40).unwrap();
        j.append(&Op::Admit(admit("z"))).unwrap();
        drop(j);
        match recover(&jpath, crate::fs::real()) {
            Err(RecoverError::Layout(_)) => {}
            other => panic!("must refuse, got {other:?}"),
        }
    }

    #[test]
    fn recover_full_replay_when_no_snapshot_exists() {
        let dir = tmpdir("recover_full");
        let jpath = dir.join("engine.wal");
        let mut j = Journal::create(&jpath).unwrap();
        j.append(&Op::Admit(admit("a"))).unwrap();
        j.append(&Op::Release { name: "a".into() }).unwrap();
        drop(j);
        let r = recover(&jpath, crate::fs::real()).unwrap();
        assert!(r.snapshot.is_none());
        assert_eq!(r.tail_ops.len(), 2);
        assert_eq!(r.committed_seq, 2);
        assert_eq!(r.gen, 0);
    }

    #[test]
    fn faulted_publish_leaves_state_recoverable() {
        // Run publish+rotate under a fault at every site; afterwards a
        // real-backend recovery must still see both committed ops.
        for kind in FAULT_KINDS {
            for site in 0..12u64 {
                let dir = tmpdir("faulted_pub");
                let jpath = dir.join("engine.wal");
                let mut j = Journal::create(&jpath).unwrap();
                j.append(&Op::Admit(admit("a"))).unwrap();
                j.append(&Op::Admit(admit("b"))).unwrap();
                drop(j);
                let fs: crate::fs::StorageHandle = Arc::new(FaultFs::new(site, kind));
                let (mut j, _) = Journal::resume_with(&jpath, fs.clone()).unwrap();
                let snap = Snapshot {
                    gen: 1,
                    seq: 2,
                    base_flows: 0,
                    admits: vec![admit("a"), admit("b")],
                };
                let published = publish_snapshot(fs.as_ref(), &jpath, &snap);
                if published.is_ok() {
                    let _ = j.rotate(1, 2);
                }
                drop(j);
                let r = recover(&jpath, crate::fs::real())
                    .unwrap_or_else(|e| panic!("{kind} at site {site}: recovery failed: {e}"));
                assert_eq!(
                    r.committed_seq, 2,
                    "{kind} at site {site}: committed ops lost"
                );
                let mut state: Vec<AdmitOp> = r.snapshot.map(|s| s.admits).unwrap_or_default();
                for op in &r.tail_ops {
                    match op {
                        Op::Admit(a) => state.push(a.clone()),
                        Op::Release { name } => state.retain(|a| &a.name != name),
                    }
                }
                assert_eq!(state, vec![admit("a"), admit("b")], "{kind} at site {site}");
            }
        }
    }

    #[test]
    fn recover_handles_fresh_directory() {
        let dir = tmpdir("recover_fresh");
        let jpath = dir.join("engine.wal");
        let r = recover(&jpath, crate::fs::real()).unwrap();
        assert!(r.snapshot.is_none());
        assert!(r.tail_ops.is_empty());
        assert_eq!(r.committed_seq, 0);
    }
}
