//! Bounded request queue with deadline-aware load shedding.
//!
//! The churn engine admits work through this queue. Overload policy:
//!
//! * `Release` and `Query` requests are **never shed** — releases free
//!   capacity (shedding them makes overload worse) and queries are
//!   read-only and cheap.
//! * `Admit` requests compete for the remaining slots. When the queue
//!   is full, the *loosest-deadline* queued admit is compared against
//!   the incoming one: the incoming request displaces it only if the
//!   incoming deadline is strictly tighter; otherwise the incoming
//!   request itself is shed. Under overload the engine therefore keeps
//!   the admits that are hardest to serve later — shedding a tight
//!   deadline and keeping a loose one would throw away exactly the
//!   requests whose value decays fastest.
//!
//! Drain order stays FIFO: shedding changes *membership*, not order, so
//! a script replays deterministically.

use crate::request::Request;
use std::collections::VecDeque;

/// Why a request was dropped instead of enqueued.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// Queue full and the incoming admit's deadline was no tighter than
    /// every queued admit's.
    IncomingLoosest,
    /// Queue full of releases/queries (nothing sheddable) — the admit
    /// had no slot to take.
    NoSheddableSlot,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::IncomingLoosest => {
                write!(f, "queue full; deadline looser than all queued admits")
            }
            ShedReason::NoSheddableSlot => {
                write!(f, "queue full of unsheddable requests")
            }
        }
    }
}

/// Outcome of [`ShedQueue::push`].
#[derive(Debug, PartialEq, Eq)]
pub enum Pushed {
    /// Enqueued without displacing anything.
    Enqueued,
    /// Enqueued; the named queued admit was shed to make room.
    Displaced(Request),
    /// The incoming request itself was shed (returned to the caller).
    Shed(Request, ShedReason),
}

/// A bounded FIFO with deadline-aware shedding of admit requests.
#[derive(Debug)]
pub struct ShedQueue {
    items: VecDeque<Request>,
    capacity: usize,
}

impl ShedQueue {
    /// A queue holding at most `capacity` pending requests
    /// (`capacity >= 1`; zero is clamped to one).
    pub fn new(capacity: usize) -> ShedQueue {
        ShedQueue {
            items: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pop the oldest queued request.
    pub fn pop(&mut self) -> Option<Request> {
        self.items.pop_front()
    }

    /// Offer a request. Releases/queries always fit (they may push the
    /// queue past `capacity` by at most the number of concurrently
    /// pending releases — bounded in practice by the admitted set);
    /// admits obey the shedding policy above.
    pub fn push(&mut self, req: Request) -> Pushed {
        let incoming_deadline = match &req {
            Request::Admit(a) => a.deadline,
            Request::Release { .. } | Request::Query { .. } => {
                self.items.push_back(req);
                return Pushed::Enqueued;
            }
        };
        if self.items.len() < self.capacity {
            self.items.push_back(req);
            return Pushed::Enqueued;
        }
        // Find the loosest-deadline queued admit.
        let loosest = self
            .items
            .iter()
            .enumerate()
            .filter_map(|(i, r)| match r {
                Request::Admit(a) => Some((i, a.deadline)),
                _ => None,
            })
            .max_by(|(_, a), (_, b)| a.cmp(b));
        match loosest {
            Some((idx, loosest_deadline)) if incoming_deadline < loosest_deadline => {
                // Displace: membership changes, order of survivors does not.
                match self.items.remove(idx) {
                    Some(victim) => {
                        self.items.push_back(req);
                        Pushed::Displaced(victim)
                    }
                    None => Pushed::Shed(req, ShedReason::NoSheddableSlot),
                }
            }
            Some(_) => Pushed::Shed(req, ShedReason::IncomingLoosest),
            None => Pushed::Shed(req, ShedReason::NoSheddableSlot),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::AdmitRequest;
    use dnc_net::ServerId;
    use dnc_num::{int, Rat};

    fn admit(name: &str, deadline: Rat) -> Request {
        Request::Admit(AdmitRequest {
            name: name.into(),
            route: vec![ServerId(0)],
            buckets: vec![(int(1), int(1))],
            peak: None,
            priority: 0,
            deadline,
        })
    }

    fn names(q: &ShedQueue) -> Vec<String> {
        q.items
            .iter()
            .map(|r| match r {
                Request::Admit(a) => a.name.clone(),
                Request::Release { name } => format!("-{name}"),
                Request::Query { name } => format!("?{}", name.clone().unwrap_or_default()),
            })
            .collect()
    }

    #[test]
    fn fifo_below_capacity() {
        let mut q = ShedQueue::new(4);
        assert_eq!(q.push(admit("a", int(5))), Pushed::Enqueued);
        assert_eq!(q.push(admit("b", int(1))), Pushed::Enqueued);
        assert_eq!(names(&q), ["a", "b"]);
        assert!(matches!(q.pop(), Some(Request::Admit(a)) if a.name == "a"));
    }

    #[test]
    fn tighter_incoming_displaces_loosest_queued_admit() {
        let mut q = ShedQueue::new(2);
        q.push(admit("loose", int(100)));
        q.push(admit("mid", int(10)));
        let out = q.push(admit("tight", int(1)));
        assert!(
            matches!(&out, Pushed::Displaced(Request::Admit(a)) if a.name == "loose"),
            "{out:?}"
        );
        // Survivor order is unchanged; the newcomer goes to the back.
        assert_eq!(names(&q), ["mid", "tight"]);
    }

    #[test]
    fn looser_incoming_is_shed() {
        let mut q = ShedQueue::new(2);
        q.push(admit("a", int(1)));
        q.push(admit("b", int(2)));
        assert!(
            matches!(
                q.push(admit("c", int(2))),
                Pushed::Shed(Request::Admit(a), ShedReason::IncomingLoosest) if a.name == "c"
            ),
            "equal deadline must not displace (strictly tighter only)"
        );
        assert_eq!(names(&q), ["a", "b"]);
    }

    #[test]
    fn releases_and_queries_are_never_shed() {
        let mut q = ShedQueue::new(1);
        q.push(admit("a", int(1)));
        assert_eq!(
            q.push(Request::Release { name: "a".into() }),
            Pushed::Enqueued
        );
        assert_eq!(q.push(Request::Query { name: None }), Pushed::Enqueued);
        assert_eq!(q.len(), 3, "unsheddable requests may exceed capacity");
    }

    #[test]
    fn admit_cannot_displace_unsheddable_requests() {
        let mut q = ShedQueue::new(1);
        q.push(Request::Release { name: "x".into() });
        assert!(matches!(
            q.push(admit("a", int(1))),
            Pushed::Shed(_, ShedReason::NoSheddableSlot)
        ));
    }
}
