//! Bounded request queue with deadline-aware load shedding.
//!
//! The churn engine admits work through this queue. Overload policy:
//!
//! * `Release` and `Query` requests are **never shed** — releases free
//!   capacity (shedding them makes overload worse) and queries are
//!   read-only and cheap.
//! * `Admit` requests compete for the remaining slots. When the queue
//!   is full, the *loosest-deadline* queued admit is compared against
//!   the incoming one: the incoming request displaces it only if the
//!   incoming deadline is strictly tighter; otherwise the incoming
//!   request itself is shed. Under overload the engine therefore keeps
//!   the admits that are hardest to serve later — shedding a tight
//!   deadline and keeping a loose one would throw away exactly the
//!   requests whose value decays fastest.
//!
//! Drain order stays FIFO: shedding changes *membership*, not order, so
//! a script replays deterministically.
//!
//! Every shed decision comes with a **deterministic retry-after hint**
//! (see [`ShedQueue::retry_after`]): a load-proportional base plus
//! seed-derived jitter, so honest clients back off long enough for the
//! queue to drain and do not stampede back in lockstep — yet the same
//! seed and shed history always produce the same hints, keeping scripted
//! runs and falsifiers bit-reproducible.
//!
//! The queue is generic over its item: the engine queues bare
//! [`Request`]s, while the socket front end queues requests still
//! attached to their reply channels. Anything [`Sheddable`] works.

use crate::request::Request;
use dnc_num::Rat;
use std::collections::VecDeque;

/// How the queue inspects an item for the shedding policy.
pub trait Sheddable {
    /// `Some(deadline)` when the item is an admit competing for slots
    /// under that end-to-end deadline; `None` for unsheddable work
    /// (releases/queries), which always enqueues.
    fn shed_deadline(&self) -> Option<Rat>;
}

impl Sheddable for Request {
    fn shed_deadline(&self) -> Option<Rat> {
        match self {
            Request::Admit(a) => Some(a.deadline),
            Request::Release { .. } | Request::Query { .. } => None,
        }
    }
}

/// Why a request was dropped instead of enqueued.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// Queue full and the incoming admit's deadline was no tighter than
    /// every queued admit's.
    IncomingLoosest,
    /// Queue full of releases/queries (nothing sheddable) — the admit
    /// had no slot to take.
    NoSheddableSlot,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::IncomingLoosest => {
                write!(f, "queue full; deadline looser than all queued admits")
            }
            ShedReason::NoSheddableSlot => {
                write!(f, "queue full of unsheddable requests")
            }
        }
    }
}

/// Outcome of [`ShedQueue::push`].
#[derive(Debug, PartialEq, Eq)]
pub enum Pushed<T = Request> {
    /// Enqueued without displacing anything.
    Enqueued,
    /// Enqueued; the named queued admit was shed to make room.
    Displaced(T),
    /// The incoming request itself was shed (returned to the caller).
    Shed(T, ShedReason),
}

/// A bounded FIFO with deadline-aware shedding of admit requests.
#[derive(Debug)]
pub struct ShedQueue<T = Request> {
    items: VecDeque<T>,
    capacity: usize,
    seed: u64,
    sheds: u64,
}

/// Default seed for [`ShedQueue::new`] — any fixed value works; shared
/// (and exported for `EngineConfig`'s default) so two engines built
/// from the same config hint identically.
pub const DEFAULT_RETRY_SEED: u64 = 0x5EED_0BAC_C0FF_EE01;

impl<T: Sheddable> ShedQueue<T> {
    /// A queue holding at most `capacity` pending requests
    /// (`capacity >= 1`; zero is clamped to one), with the default
    /// retry-after seed.
    pub fn new(capacity: usize) -> ShedQueue<T> {
        ShedQueue::with_seed(capacity, DEFAULT_RETRY_SEED)
    }

    /// Like [`ShedQueue::new`] with an explicit retry-after jitter seed,
    /// so deployments can decorrelate their backoff hints while staying
    /// individually deterministic.
    pub fn with_seed(capacity: usize, seed: u64) -> ShedQueue<T> {
        ShedQueue {
            items: VecDeque::new(),
            capacity: capacity.max(1),
            seed,
            sheds: 0,
        }
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pop the oldest queued request.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Offer a request. Releases/queries always fit (they may push the
    /// queue past `capacity` by at most the number of concurrently
    /// pending releases — bounded in practice by the admitted set);
    /// admits obey the shedding policy above.
    pub fn push(&mut self, req: T) -> Pushed<T> {
        let Some(incoming_deadline) = req.shed_deadline() else {
            self.items.push_back(req);
            return Pushed::Enqueued;
        };
        if self.items.len() < self.capacity {
            self.items.push_back(req);
            return Pushed::Enqueued;
        }
        // Find the loosest-deadline queued admit.
        let loosest = self
            .items
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.shed_deadline().map(|d| (i, d)))
            .max_by(|(_, a), (_, b)| a.cmp(b));
        match loosest {
            Some((idx, loosest_deadline)) if incoming_deadline < loosest_deadline => {
                // Displace: membership changes, order of survivors does not.
                match self.items.remove(idx) {
                    Some(victim) => {
                        self.items.push_back(req);
                        Pushed::Displaced(victim)
                    }
                    None => Pushed::Shed(req, ShedReason::NoSheddableSlot),
                }
            }
            Some(_) => Pushed::Shed(req, ShedReason::IncomingLoosest),
            None => Pushed::Shed(req, ShedReason::NoSheddableSlot),
        }
    }

    /// The retry-after hint (in deadline ticks) to attach to the next
    /// SHED response. Deterministic and seed-derived: the base grows
    /// with the current queue depth (the more backed up we are, the
    /// longer the wait), and per-shed jitter of up to half the base —
    /// drawn from a splitmix64 stream over `(seed, shed counter)` —
    /// spreads retries out so shed clients do not return in lockstep.
    /// The same seed and shed history always yield the same hints.
    pub fn retry_after(&mut self) -> u64 {
        let base = 2 * self.items.len() as u64 + 2;
        let roll = splitmix64(self.seed ^ self.sheds.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.sheds = self.sheds.wrapping_add(1);
        base + roll % (base / 2 + 1)
    }

    /// How many retry-after hints have been issued (== sheds answered).
    pub fn sheds(&self) -> u64 {
        self.sheds
    }
}

/// splitmix64's finalizer: a full-avalanche 64-bit mixer, dependency-
/// free and plenty for de-correlating backoff jitter (not a CSPRNG).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::AdmitRequest;
    use dnc_net::ServerId;
    use dnc_num::{int, Rat};

    fn admit(name: &str, deadline: Rat) -> Request {
        Request::Admit(AdmitRequest {
            name: name.into(),
            route: vec![ServerId(0)],
            buckets: vec![(int(1), int(1))],
            peak: None,
            priority: 0,
            deadline,
        })
    }

    fn names(q: &ShedQueue) -> Vec<String> {
        q.items
            .iter()
            .map(|r| match r {
                Request::Admit(a) => a.name.clone(),
                Request::Release { name } => format!("-{name}"),
                Request::Query { name } => format!("?{}", name.clone().unwrap_or_default()),
            })
            .collect()
    }

    #[test]
    fn fifo_below_capacity() {
        let mut q = ShedQueue::new(4);
        assert_eq!(q.push(admit("a", int(5))), Pushed::Enqueued);
        assert_eq!(q.push(admit("b", int(1))), Pushed::Enqueued);
        assert_eq!(names(&q), ["a", "b"]);
        assert!(matches!(q.pop(), Some(Request::Admit(a)) if a.name == "a"));
    }

    #[test]
    fn tighter_incoming_displaces_loosest_queued_admit() {
        let mut q = ShedQueue::new(2);
        q.push(admit("loose", int(100)));
        q.push(admit("mid", int(10)));
        let out = q.push(admit("tight", int(1)));
        assert!(
            matches!(&out, Pushed::Displaced(Request::Admit(a)) if a.name == "loose"),
            "{out:?}"
        );
        // Survivor order is unchanged; the newcomer goes to the back.
        assert_eq!(names(&q), ["mid", "tight"]);
    }

    #[test]
    fn looser_incoming_is_shed() {
        let mut q = ShedQueue::new(2);
        q.push(admit("a", int(1)));
        q.push(admit("b", int(2)));
        assert!(
            matches!(
                q.push(admit("c", int(2))),
                Pushed::Shed(Request::Admit(a), ShedReason::IncomingLoosest) if a.name == "c"
            ),
            "equal deadline must not displace (strictly tighter only)"
        );
        assert_eq!(names(&q), ["a", "b"]);
    }

    #[test]
    fn releases_and_queries_are_never_shed() {
        let mut q = ShedQueue::new(1);
        q.push(admit("a", int(1)));
        assert_eq!(
            q.push(Request::Release { name: "a".into() }),
            Pushed::Enqueued
        );
        assert_eq!(q.push(Request::Query { name: None }), Pushed::Enqueued);
        assert_eq!(q.len(), 3, "unsheddable requests may exceed capacity");
    }

    #[test]
    fn admit_cannot_displace_unsheddable_requests() {
        let mut q = ShedQueue::new(1);
        q.push(Request::Release { name: "x".into() });
        assert!(matches!(
            q.push(admit("a", int(1))),
            Pushed::Shed(_, ShedReason::NoSheddableSlot)
        ));
    }

    #[test]
    fn retry_after_is_deterministic_in_seed_and_shed_history() {
        let mut a: ShedQueue = ShedQueue::with_seed(2, 7);
        let mut b: ShedQueue = ShedQueue::with_seed(2, 7);
        a.push(admit("x", int(1)));
        b.push(admit("x", int(1)));
        let ha: Vec<u64> = (0..6).map(|_| a.retry_after()).collect();
        let hb: Vec<u64> = (0..6).map(|_| b.retry_after()).collect();
        assert_eq!(ha, hb, "same seed + history must hint identically");
        let mut c: ShedQueue = ShedQueue::with_seed(2, 8);
        c.push(admit("x", int(1)));
        let hc: Vec<u64> = (0..6).map(|_| c.retry_after()).collect();
        assert_ne!(ha, hc, "different seeds must decorrelate the jitter");
        assert_eq!(a.sheds(), 6);
    }

    #[test]
    fn retry_after_grows_with_load_and_jitter_stays_bounded() {
        let mut q: ShedQueue = ShedQueue::with_seed(64, 3);
        let mut shallow = ShedQueue::with_seed(64, 3);
        shallow.push(admit("only", int(5)));
        for i in 0..16 {
            q.push(admit(&format!("f{i}"), int(5)));
        }
        let base = 2 * q.len() as u64 + 2;
        let shallow_cap = {
            let b = 2 * shallow.len() as u64 + 2;
            b + b / 2
        };
        for _ in 0..32 {
            let h = q.retry_after();
            assert!(
                h >= base && h <= base + base / 2,
                "{h} outside the [base, 1.5*base] band at depth 16"
            );
            assert!(h > shallow_cap, "deep-queue hints must exceed shallow ones");
        }
    }

    #[test]
    fn queue_is_generic_over_sheddable_items() {
        struct Tagged(u32, Option<Rat>);
        impl Sheddable for Tagged {
            fn shed_deadline(&self) -> Option<Rat> {
                self.1
            }
        }
        let mut q: ShedQueue<Tagged> = ShedQueue::new(1);
        assert!(matches!(q.push(Tagged(1, Some(int(5)))), Pushed::Enqueued));
        match q.push(Tagged(2, Some(int(1)))) {
            Pushed::Displaced(Tagged(id, _)) => assert_eq!(id, 1, "loosest item displaced"),
            _ => panic!("tighter incoming item must displace the loose one"),
        }
        // Unsheddable items (deadline None) always fit, even past capacity.
        assert!(matches!(q.push(Tagged(3, None)), Pushed::Enqueued));
        assert_eq!(q.len(), 2);
    }
}
