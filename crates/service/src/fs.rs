//! Storage backend abstraction for the durability layer.
//!
//! Every syscall the journal and snapshot machinery relies on for
//! crash safety — data writes, fsync, directory fsync, atomic rename,
//! truncation, unlink — is routed through the [`StorageFs`] trait.
//! Production uses [`RealFs`] (a thin passthrough to `std::fs`); the
//! torture falsifier substitutes [`FaultFs`], which injects one fault
//! (EIO, ENOSPC, a short write, or a crash before/after the call) at an
//! enumerated call site and then fails every subsequent call, modeling
//! a machine that died at that exact syscall.
//!
//! Only the durability-critical operations are mediated. Plain opens
//! and reads stay direct: a fault there is indistinguishable from the
//! file not existing, which recovery already handles, whereas a fault
//! on a *write-side* call is exactly the window where an undetected
//! failure could acknowledge an undurable operation.

use std::fmt;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The write-side filesystem operations the durability layer performs.
/// Each method is one enumerated failpoint site under [`FaultFs`].
pub trait StorageFs: fmt::Debug + Send + Sync {
    /// Write `buf` in full at the file's current position.
    fn write(&self, file: &mut File, buf: &[u8]) -> io::Result<()>;
    /// Flush file data (and the metadata needed to read it) to disk.
    fn sync_data(&self, file: &File) -> io::Result<()>;
    /// Flush the directory entry table at `dir` to disk.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Atomically rename `from` to `to` (replacing `to` if present).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Truncate (or extend) `file` to `len` bytes.
    fn set_len(&self, file: &File, len: u64) -> io::Result<()>;
    /// Remove the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
}

/// Shared handle to a storage backend; cloned into every journal and
/// snapshot writer so one injected fault poisons the whole service.
pub type StorageHandle = Arc<dyn StorageFs>;

/// The production backend.
pub fn real() -> StorageHandle {
    Arc::new(RealFs)
}

/// Passthrough to `std::fs` — the backend every deployment runs.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl StorageFs for RealFs {
    fn write(&self, file: &mut File, buf: &[u8]) -> io::Result<()> {
        // audit: allow(dur-fsync, backend primitive: the caller sequences write → sync through the StorageFs trait)
        file.write_all(buf)
    }

    fn sync_data(&self, file: &File) -> io::Result<()> {
        file.sync_data()
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn set_len(&self, file: &File, len: u64) -> io::Result<()> {
        // audit: allow(dur-fsync, backend primitive: the caller sequences truncate → sync through the StorageFs trait)
        file.set_len(len)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

/// What an injected fault does at its target site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The call fails with EIO; nothing was performed.
    Eio,
    /// The call fails with ENOSPC; nothing was performed.
    Enospc,
    /// A `write` persists only the first half of the buffer, then
    /// fails — the torn-record case. Non-write sites degrade to EIO.
    ShortWrite,
    /// The process "dies" just before the call: the call is not
    /// performed and every subsequent call fails.
    CrashBefore,
    /// The process "dies" just after the call: the call is performed
    /// in full, then every subsequent call fails.
    CrashAfter,
}

/// All injectable fault kinds, in enumeration order.
pub const FAULT_KINDS: [FaultKind; 5] = [
    FaultKind::Eio,
    FaultKind::Enospc,
    FaultKind::ShortWrite,
    FaultKind::CrashBefore,
    FaultKind::CrashAfter,
];

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Eio => write!(f, "eio"),
            FaultKind::Enospc => write!(f, "enospc"),
            FaultKind::ShortWrite => write!(f, "short-write"),
            FaultKind::CrashBefore => write!(f, "crash-before"),
            FaultKind::CrashAfter => write!(f, "crash-after"),
        }
    }
}

/// A backend that counts every mediated call as a *site* and injects
/// one fault at site `target`, after which every further call fails
/// (fail-stop: the process is considered dead past its first fault).
///
/// With `target` beyond the run's site count, no fault fires and the
/// instance doubles as a probe that measures how many sites a workload
/// visits — the enumeration bound for a torture sweep.
#[derive(Debug)]
pub struct FaultFs {
    inner: RealFs,
    target: u64,
    kind: FaultKind,
    next_site: AtomicU64,
    tripped: AtomicBool,
}

impl FaultFs {
    /// A backend injecting `kind` at the `target`-th mediated call
    /// (0-based), counting across all operations in program order.
    pub fn new(target: u64, kind: FaultKind) -> FaultFs {
        FaultFs {
            inner: RealFs,
            target,
            kind,
            next_site: AtomicU64::new(0),
            tripped: AtomicBool::new(false),
        }
    }

    /// A probe that never faults: run a workload against it and read
    /// [`FaultFs::sites_visited`] to learn the failpoint count.
    pub fn probe() -> FaultFs {
        FaultFs::new(u64::MAX, FaultKind::Eio)
    }

    /// Mediated calls made so far.
    pub fn sites_visited(&self) -> u64 {
        self.next_site.load(Ordering::SeqCst)
    }

    /// True once the fault has fired (every later call fails).
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::SeqCst)
    }

    /// Advance the site counter; `Some(kind)` when this call is the
    /// target. Fails immediately when the backend is already dead.
    fn gate(&self, op: &str) -> io::Result<Option<FaultKind>> {
        if self.tripped.load(Ordering::SeqCst) {
            return Err(io::Error::other(format!(
                "injected crash: storage dead since site {} ({}), refusing {op}",
                self.target, self.kind
            )));
        }
        let site = self.next_site.fetch_add(1, Ordering::SeqCst);
        if site == self.target {
            self.tripped.store(true, Ordering::SeqCst);
            Ok(Some(self.kind))
        } else {
            Ok(None)
        }
    }

    fn fault_err(&self, op: &str, what: &str) -> io::Error {
        io::Error::other(format!(
            "injected {what} at site {} during {op}",
            self.target
        ))
    }

    /// Run a non-write operation through the gate: `ShortWrite`
    /// degrades to a performed-nothing failure, `CrashAfter` performs
    /// the operation before failing.
    fn run<T>(&self, op: &str, f: impl FnOnce() -> io::Result<T>) -> io::Result<T> {
        match self.gate(op)? {
            None => f(),
            Some(FaultKind::CrashAfter) => {
                let _ = f()?;
                Err(self.fault_err(op, "crash-after"))
            }
            Some(kind) => Err(self.fault_err(op, &kind.to_string())),
        }
    }
}

impl StorageFs for FaultFs {
    fn write(&self, file: &mut File, buf: &[u8]) -> io::Result<()> {
        match self.gate("write")? {
            None => self.inner.write(file, buf),
            Some(FaultKind::ShortWrite) => {
                let torn = buf.get(..buf.len() / 2).unwrap_or(&[]);
                self.inner.write(file, torn)?;
                Err(self.fault_err("write", "short write"))
            }
            Some(FaultKind::CrashAfter) => {
                self.inner.write(file, buf)?;
                Err(self.fault_err("write", "crash-after"))
            }
            Some(kind) => Err(self.fault_err("write", &kind.to_string())),
        }
    }

    fn sync_data(&self, file: &File) -> io::Result<()> {
        self.run("sync_data", || self.inner.sync_data(file))
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.run("sync_dir", || self.inner.sync_dir(dir))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.run("rename", || self.inner.rename(from, to))
    }

    fn set_len(&self, file: &File, len: u64) -> io::Result<()> {
        // audit: allow(dur-fsync, fault-injection passthrough: the caller sequences truncate → sync through the StorageFs trait)
        self.run("set_len", || self.inner.set_len(file, len))
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.run("remove_file", || self.inner.remove_file(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dnc_fs_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn open_rw(path: &Path) -> File {
        std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .unwrap()
    }

    #[test]
    fn probe_counts_sites_without_faulting() {
        let fs = FaultFs::probe();
        let path = tmp("probe.bin");
        let mut f = open_rw(&path);
        fs.write(&mut f, b"hello").unwrap();
        fs.sync_data(&f).unwrap();
        fs.set_len(&f, 2).unwrap();
        fs.sync_dir(path.parent().unwrap()).unwrap();
        assert_eq!(fs.sites_visited(), 4);
        assert!(!fs.tripped());
    }

    #[test]
    fn short_write_persists_half_then_fails_stop() {
        let fs = FaultFs::new(0, FaultKind::ShortWrite);
        let path = tmp("short.bin");
        let mut f = open_rw(&path);
        assert!(fs.write(&mut f, b"abcdef").is_err());
        let mut got = String::new();
        File::open(&path).unwrap().read_to_string(&mut got).unwrap();
        assert_eq!(got, "abc", "exactly half the buffer must land");
        // Fail-stop: the backend is dead now.
        assert!(fs.tripped());
        assert!(fs.sync_data(&f).is_err());
        assert!(fs.write(&mut f, b"x").is_err());
    }

    #[test]
    fn crash_before_performs_nothing_crash_after_performs_all() {
        for (kind, want) in [(FaultKind::CrashBefore, ""), (FaultKind::CrashAfter, "xy")] {
            let fs = FaultFs::new(0, kind);
            let path = tmp("crash.bin");
            let mut f = open_rw(&path);
            assert!(fs.write(&mut f, b"xy").is_err(), "{kind}");
            let mut got = String::new();
            File::open(&path).unwrap().read_to_string(&mut got).unwrap();
            assert_eq!(got, want, "{kind}");
        }
    }

    #[test]
    fn fault_at_later_site_spares_earlier_calls() {
        let fs = FaultFs::new(2, FaultKind::Eio);
        let path = tmp("later.bin");
        let mut f = open_rw(&path);
        fs.write(&mut f, b"a").unwrap();
        fs.sync_data(&f).unwrap();
        assert!(fs.write(&mut f, b"b").is_err(), "site 2 must fault");
        assert!(fs.sync_data(&f).is_err(), "dead after the fault");
    }

    #[test]
    fn rename_and_remove_are_mediated() {
        let fs = FaultFs::new(u64::MAX, FaultKind::Eio);
        let a = tmp("move_a.bin");
        let b = tmp("move_b.bin");
        std::fs::write(&a, b"payload").unwrap();
        fs.rename(&a, &b).unwrap();
        assert!(!a.exists() && b.exists());
        fs.remove_file(&b).unwrap();
        assert!(!b.exists());
        assert_eq!(fs.sites_visited(), 2);
    }
}
