//! Concurrent socket front end for the churn engine.
//!
//! [`run`] turns a bound [`TcpListener`] into a line-protocol admission
//! server: one **acceptor** thread hands each connection a **reader**
//! and a **writer** thread, readers decode lines into [`Job`]s, and the
//! calling thread becomes the single **commit loop** owning a
//! [`Batcher`] — so every mutation still flows through one engine, and
//! group commits batch concurrent clients' ops into one journal fsync.
//!
//! ## Ordering
//!
//! * Per connection, replies arrive in request order: the reader feeds
//!   one FIFO job channel, the batcher stages FIFO (protocol errors
//!   ride the queue as pre-rendered lines), and each connection's
//!   writer drains one ordered channel.
//! * Acknowledgments are released only after the journal fsync of the
//!   group commit containing the op ([`Batcher::flush`]), and in
//!   staging order — acknowledged commits are never reordered.
//! * Shed and displaced jobs are answered immediately with the
//!   deterministic retry-after hint; they were never committed.
//!
//! ## Drain
//!
//! A `shutdown` protocol line (or the shared flag, for embedders) stops
//! the acceptor, winds down readers at their next tick, flushes and
//! fsyncs the remaining backlog, and returns the engine. The drain
//! budget is counted in commit-loop ticks rather than wall-clock reads,
//! so the server adds no nondeterministic clock sites.

use crate::batch::{Batcher, Job, RenderFn, Work, FAIL_STOP_PREFIX};
use crate::engine::{ChurnEngine, EngineError, EngineStats};
use crate::request::Request;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

/// Decodes one trimmed, non-empty protocol line into a [`Request`].
/// `Err` is the **complete reply line** to send back (the front end
/// owns presentation, including its error tag).
pub type DecodeFn = dyn Fn(&str) -> Result<Request, String> + Send + Sync;

/// Commit-loop tick: how often the batcher sweeps its job channel, and
/// the poll interval for the acceptor and idle readers.
const TICK_MS: u64 = 25;

/// Reader poll quantum so blocked reads notice a drain promptly.
const READ_TICK: Duration = Duration::from_millis(250);

/// Reply to a connection past `max_conns` (sent before closing).
const AT_CAPACITY_LINE: &str = "ERR     server at connection capacity; retry later";

/// Reply to the `shutdown` command, delivered after the final flush.
const GOODBYE_LINE: &str = "BYE     draining; goodbye";

/// Tuning for [`run`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Max ops per group commit (one journal record + fsync each).
    pub batch: usize,
    /// Concurrent connection cap; extras get [`AT_CAPACITY_LINE`].
    pub max_conns: usize,
    /// Pending-job capacity of the shed queue.
    pub queue_capacity: usize,
    /// Seed for deterministic retry-after hints on SHED replies.
    pub shed_seed: u64,
    /// Close a connection silent for this long (zero = never).
    pub idle_timeout: Duration,
    /// Per-connection socket write deadline (zero = none).
    pub write_timeout: Duration,
    /// How long the drain phase may wait for stragglers.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            batch: 8,
            max_conns: 64,
            queue_capacity: 64,
            shed_seed: crate::queue::DEFAULT_RETRY_SEED,
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Why [`run`] stopped serving.
#[derive(Debug)]
pub enum ServerError {
    /// Listener/socket failure outside any one connection.
    Io(std::io::Error),
    /// The engine (typically its journal) failed; nothing from the
    /// failed chunk was acknowledged.
    Engine(EngineError),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "server i/o: {e}"),
            ServerError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> ServerError {
        ServerError::Io(e)
    }
}

impl From<EngineError> for ServerError {
    fn from(e: EngineError) -> ServerError {
        ServerError::Engine(e)
    }
}

/// What one serving run did, for footers and smoke tests.
#[derive(Clone, Debug, Default)]
pub struct ServerReport {
    /// Connections accepted (including later-rejected ones).
    pub connections: u64,
    /// Connections turned away at the `max_conns` cap.
    pub rejected_connections: u64,
    /// Protocol lines decoded into engine requests.
    pub requests: u64,
    /// Lines answered with a decode-error reply.
    pub protocol_errors: u64,
    /// Jobs answered with a SHED reply under overload.
    pub sheds: u64,
    /// Whether the drain finished with an empty backlog and no live
    /// connections inside the drain budget.
    pub drained_clean: bool,
    /// Final engine counters.
    pub stats: EngineStats,
}

/// Shared connection counters between acceptor/readers and the report.
#[derive(Default)]
struct Tallies {
    connections: AtomicU64,
    rejected: AtomicU64,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
    live: AtomicUsize,
}

/// Serve `listener` until a client sends `shutdown` (or `shutdown` is
/// set by the embedder), then drain and return the engine with a
/// report. The calling thread runs the commit loop; accept and
/// per-connection I/O run on background threads.
///
/// # Errors
/// [`ServerError::Engine`] if a group commit fails (acknowledged state
/// is still exactly the journal's committed prefix), [`ServerError::Io`]
/// if the listener cannot be polled.
pub fn run(
    listener: TcpListener,
    engine: ChurnEngine,
    cfg: ServerConfig,
    decode: Arc<DecodeFn>,
    render: Arc<RenderFn>,
    shutdown: Arc<AtomicBool>,
) -> Result<(ChurnEngine, ServerReport), ServerError> {
    let _span = dnc_telemetry::span("server.run");
    listener.set_nonblocking(true)?;
    let mut batcher = Batcher::new(engine, cfg.queue_capacity, cfg.shed_seed, cfg.batch);
    let tallies = Arc::new(Tallies::default());
    let (job_tx, job_rx) = mpsc::channel::<Job>();

    let acceptor = {
        let cfg = cfg.clone();
        let shutdown = Arc::clone(&shutdown);
        let tallies = Arc::clone(&tallies);
        let decode = Arc::clone(&decode);
        std::thread::spawn(move || accept_loop(listener, job_tx, cfg, shutdown, tallies, decode))
    };

    let mut drained_clean = false;
    // Drain budget in commit-loop ticks (no wall-clock reads needed).
    let mut drain_ticks: Option<u64> = None;
    let serve_result: Result<(), ServerError> = loop {
        match job_rx.recv_timeout(Duration::from_millis(TICK_MS)) {
            Ok(job) => {
                batcher.enqueue(job, &*render);
                while let Ok(more) = job_rx.try_recv() {
                    batcher.enqueue(more, &*render);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Acceptor and every reader are gone; whatever is
                // queued is all there will ever be.
                if let Err(e) = batcher.flush(&*render) {
                    break Err(ServerError::Engine(e));
                }
                drained_clean = batcher.backlog() == 0;
                break Ok(());
            }
        }
        if let Err(e) = batcher.flush(&*render) {
            break Err(ServerError::Engine(e));
        }
        if drain_ticks.is_none() && shutdown.load(Ordering::SeqCst) {
            drain_ticks = Some((cfg.drain_timeout.as_millis() as u64 / TICK_MS).max(1));
        }
        if let Some(left) = drain_ticks {
            if tallies.live.load(Ordering::SeqCst) == 0 && batcher.backlog() == 0 {
                // Everything flushed and nobody left to produce more —
                // modulo a job racing into the channel; the sweep at
                // the top of the next iteration would have caught it,
                // so take one more sweep here instead of looping.
                let mut late = false;
                while let Ok(more) = job_rx.try_recv() {
                    batcher.enqueue(more, &*render);
                    late = true;
                }
                if late {
                    if let Err(e) = batcher.flush(&*render) {
                        break Err(ServerError::Engine(e));
                    }
                }
                drained_clean = batcher.backlog() == 0;
                break Ok(());
            }
            if left == 0 {
                break Ok(());
            }
            drain_ticks = Some(left - 1);
        }
    };

    // Stop accepting regardless of why we are leaving, then wait for
    // the acceptor (it polls every tick, so this is prompt). Reader
    // threads notice the flag at their next read tick and exit on
    // their own; their sends fail harmlessly once `job_rx` drops.
    shutdown.store(true, Ordering::SeqCst);
    let _ = acceptor.join();

    if let Err(ServerError::Engine(e)) = &serve_result {
        // Fail-stop: the journal is poisoned and nothing further will
        // ever commit. Answer every job still queued — or racing in
        // from a reader — with the terminal ERR so no client waits on
        // an acknowledgment that cannot come. (The chunk that hit the
        // failure was already answered by the batcher itself.)
        let line = format!("{FAIL_STOP_PREFIX}{e}");
        batcher.fail_pending(&line);
        while let Ok(job) = job_rx.try_recv() {
            let _ = match job.work {
                Work::Line(l) => job.reply.send(l),
                Work::Op(_) => job.reply.send(line.clone()),
            };
        }
        dnc_telemetry::counter("server.fail_stop", 1);
    }

    let report_base = ServerReport {
        connections: tallies.connections.load(Ordering::SeqCst),
        rejected_connections: tallies.rejected.load(Ordering::SeqCst),
        requests: tallies.requests.load(Ordering::SeqCst),
        protocol_errors: tallies.protocol_errors.load(Ordering::SeqCst),
        sheds: batcher.sheds(),
        drained_clean,
        stats: batcher.engine().stats(),
    };
    serve_result?;
    Ok((batcher.into_engine(), report_base))
}

/// Accept until `shutdown`; spawn a reader + writer pair per
/// connection, enforcing `max_conns` with an immediate reject line.
fn accept_loop(
    listener: TcpListener,
    job_tx: Sender<Job>,
    cfg: ServerConfig,
    shutdown: Arc<AtomicBool>,
    tallies: Arc<Tallies>,
    decode: Arc<DecodeFn>,
) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(TICK_MS));
                continue;
            }
            Err(_) => {
                // Transient accept failure (e.g. aborted handshake).
                std::thread::sleep(Duration::from_millis(TICK_MS));
                continue;
            }
        };
        tallies.connections.fetch_add(1, Ordering::SeqCst);
        // The accepted socket must block: readers/writers use timeouts.
        if stream.set_nonblocking(false).is_err() {
            continue;
        }
        if tallies.live.load(Ordering::SeqCst) >= cfg.max_conns {
            tallies.rejected.fetch_add(1, Ordering::SeqCst);
            dnc_telemetry::counter("server.rejected_connections", 1);
            let mut s = &stream;
            let _ = writeln!(s, "{AT_CAPACITY_LINE}");
            continue;
        }
        let Ok(write_half) = stream.try_clone() else {
            continue;
        };
        tallies.live.fetch_add(1, Ordering::SeqCst);
        dnc_telemetry::counter("server.connections", 1);
        let (reply_tx, reply_rx) = mpsc::channel::<String>();
        let write_timeout = cfg.write_timeout;
        std::thread::spawn(move || write_loop(write_half, reply_rx, write_timeout));
        let job_tx = job_tx.clone();
        let shutdown = Arc::clone(&shutdown);
        let tallies = Arc::clone(&tallies);
        let decode = Arc::clone(&decode);
        let idle = cfg.idle_timeout;
        std::thread::spawn(move || {
            read_loop(stream, job_tx, reply_tx, shutdown, &tallies, &*decode, idle);
            tallies.live.fetch_sub(1, Ordering::SeqCst);
        });
    }
}

/// Read protocol lines until EOF, idle timeout, a fatal read error, or
/// drain. Reads poll at [`READ_TICK`] so a blocked connection still
/// notices `shutdown`; partial lines accumulate across polls.
fn read_loop(
    stream: TcpStream,
    job_tx: Sender<Job>,
    reply_tx: Sender<String>,
    shutdown: Arc<AtomicBool>,
    tallies: &Tallies,
    decode: &DecodeFn,
    idle: Duration,
) {
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    let mut idle_for = Duration::ZERO;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match reader.read_line(&mut buf) {
            Ok(0) => return,
            Ok(_) => idle_for = Duration::ZERO,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // `buf` keeps any partial line for the next poll.
                idle_for += READ_TICK;
                if !idle.is_zero() && idle_for >= idle {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        let line = buf.trim();
        if line.is_empty() || line.starts_with('#') {
            buf.clear();
            continue;
        }
        if line == "shutdown" {
            shutdown.store(true, Ordering::SeqCst);
            let _ = job_tx.send(Job {
                work: Work::Line(GOODBYE_LINE.to_string()),
                reply: reply_tx,
            });
            return;
        }
        let work = match decode(line) {
            Ok(req) => {
                tallies.requests.fetch_add(1, Ordering::SeqCst);
                Work::Op(req)
            }
            Err(reply_line) => {
                tallies.protocol_errors.fetch_add(1, Ordering::SeqCst);
                dnc_telemetry::counter("server.protocol_errors", 1);
                Work::Line(reply_line)
            }
        };
        if job_tx
            .send(Job {
                work,
                reply: reply_tx.clone(),
            })
            .is_err()
        {
            // Commit loop is gone; nothing more to do here.
            return;
        }
        buf.clear();
    }
}

/// Forward reply lines to the socket until every sender for this
/// connection (reader + queued jobs) is gone, batching opportunistic
/// back-to-back replies into one flush.
fn write_loop(stream: TcpStream, replies: Receiver<String>, write_timeout: Duration) {
    if !write_timeout.is_zero() && stream.set_write_timeout(Some(write_timeout)).is_err() {
        return;
    }
    let mut out = BufWriter::new(stream);
    while let Ok(line) = replies.recv() {
        if writeln!(out, "{line}").is_err() {
            return;
        }
        while let Ok(more) = replies.try_recv() {
            if writeln!(out, "{more}").is_err() {
                return;
            }
        }
        if out.flush().is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, Response};
    use crate::journal::{Journal, Op};
    use crate::request::Request;
    use dnc_net::{Network, Server};
    use std::net::SocketAddr;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dnc_server_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn base() -> Network {
        let mut net = Network::new();
        for i in 0..2 {
            net.add_server(Server::unit_fifo(format!("hop{i}")));
        }
        net
    }

    fn decode(line: &str) -> Result<Request, String> {
        if line == "query" {
            return Ok(Request::Query { name: None });
        }
        match Op::decode(line) {
            Ok(Op::Admit(a)) => Ok(Request::Admit(a.into())),
            Ok(Op::Release { name }) => Ok(Request::Release { name }),
            Err(e) => Err(format!("ERR     {e}")),
        }
    }

    fn render(r: &Response) -> String {
        match r {
            Response::Admitted { name, .. } => format!("ADMIT {name}"),
            Response::Rejected { name, reason } => format!("REJECT {name}: {reason}"),
            Response::Released { name } => format!("RELEASE {name}"),
            Response::ReleaseFailed { name, reason } => format!("RELFAIL {name}: {reason}"),
            Response::Queried { entries } => format!("QUERY {}", entries.len()),
            Response::Shed {
                name, retry_after, ..
            } => format!("SHED {name} retry {retry_after}"),
        }
    }

    fn admit_line(name: &str, deadline: u32) -> String {
        format!("admit {name} deadline {deadline} prio 0 peak - route 0 1 buckets 1 1/64")
    }

    /// Spawn a server over a journaled engine; returns its address and
    /// the join handle yielding (engine, report).
    #[allow(clippy::type_complexity)]
    fn spawn_server(
        journal: PathBuf,
        cfg: ServerConfig,
    ) -> (
        SocketAddr,
        std::thread::JoinHandle<Result<(ChurnEngine, ServerReport), ServerError>>,
    ) {
        let (engine, _) =
            ChurnEngine::open(base(), Vec::new(), EngineConfig::default(), &journal).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            run(
                listener,
                engine,
                cfg,
                Arc::new(decode),
                Arc::new(render),
                Arc::new(AtomicBool::new(false)),
            )
        });
        (addr, handle)
    }

    fn send_script(addr: SocketAddr, lines: &[String]) -> Vec<String> {
        let stream = TcpStream::connect(addr).unwrap();
        let mut w = stream.try_clone().unwrap();
        for l in lines {
            writeln!(w, "{l}").unwrap();
        }
        w.flush().unwrap();
        let reader = BufReader::new(stream);
        reader.lines().map(|l| l.unwrap()).collect()
    }

    #[test]
    fn concurrent_clients_group_commit_and_replay_in_ack_order() {
        let dir = scratch("concurrent");
        let wal = dir.join("wal");
        let (addr, server) = spawn_server(
            wal.clone(),
            ServerConfig {
                batch: 8,
                drain_timeout: Duration::from_secs(10),
                ..ServerConfig::default()
            },
        );

        let clients: Vec<_> = (0..4)
            .map(|c| {
                std::thread::spawn(move || {
                    let lines = vec![
                        admit_line(&format!("c{c}a"), 40 + c),
                        admit_line(&format!("c{c}b"), 50 + c),
                        "query".to_string(),
                        format!("release c{c}a"),
                    ];
                    send_script(addr, &lines)
                })
            })
            .collect();
        let replies: Vec<Vec<String>> = clients.into_iter().map(|c| c.join().unwrap()).collect();

        // Per-connection replies arrive in request order.
        for (c, got) in replies.iter().enumerate() {
            assert_eq!(got.len(), 4, "client {c}: {got:?}");
            assert_eq!(got[0], format!("ADMIT c{c}a"));
            assert_eq!(got[1], format!("ADMIT c{c}b"));
            assert!(got[2].starts_with("QUERY "), "client {c}: {got:?}");
            assert_eq!(got[3], format!("RELEASE c{c}a"));
        }

        let shutdown: Vec<String> = send_script(addr, &["shutdown".to_string()]);
        assert_eq!(shutdown, [GOODBYE_LINE.to_string()]);
        let (engine, report) = server.join().unwrap().unwrap();
        assert!(report.drained_clean, "{report:?}");
        assert_eq!(report.requests, 16);
        assert_eq!(report.protocol_errors, 0);
        assert!(report.stats.group_commits >= 1, "{report:?}");

        // The journal's committed prefix replays to the final state:
        // every acked admit/release, nothing else.
        let (_, replay) = Journal::resume(&wal).unwrap();
        assert!(replay.tail.is_none());
        assert_eq!(replay.ops.len(), 12, "8 admits + 4 releases");
        let admitted: Vec<String> = engine.admitted().map(|e| e.name).collect();
        assert_eq!(admitted.len(), 4);
        for c in 0..4 {
            assert!(admitted.contains(&format!("c{c}b")), "{admitted:?}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn storage_failure_answers_clients_with_terminal_err() {
        use crate::fs::{FaultFs, FaultKind};
        let dir = scratch("failstop");
        let wal = dir.join("wal");
        // Journal creation consumes sites 0..3; site 3 is the first
        // commit's append write.
        let fs: crate::fs::StorageHandle = Arc::new(FaultFs::new(3, FaultKind::Eio));
        let (engine, _) =
            ChurnEngine::open_with(base(), Vec::new(), EngineConfig::default(), &wal, fs).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            run(
                listener,
                engine,
                ServerConfig::default(),
                Arc::new(decode),
                Arc::new(render),
                Arc::new(AtomicBool::new(false)),
            )
        });
        let got = send_script(addr, &[admit_line("doomed", 60)]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(
            got[0].starts_with(FAIL_STOP_PREFIX),
            "the client must see the terminal fail-stop ERR, got {got:?}"
        );
        let result = handle.join().unwrap();
        assert!(
            matches!(result, Err(ServerError::Engine(_))),
            "the server must exit with the engine failure"
        );
        // Nothing was acknowledged, and recovery agrees: empty history.
        let (recovered, info) =
            ChurnEngine::open(base(), Vec::new(), EngineConfig::default(), &wal).unwrap();
        assert_eq!(info.committed_seq, 0);
        assert_eq!(recovered.network().flows().len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn connection_cap_rejects_with_err_line() {
        let dir = scratch("cap");
        let (addr, server) = spawn_server(
            dir.join("wal"),
            ServerConfig {
                max_conns: 1,
                ..ServerConfig::default()
            },
        );
        // Hold one connection open (unfinished script keeps it live).
        let held = TcpStream::connect(addr).unwrap();
        // Give the acceptor time to register it as live.
        std::thread::sleep(Duration::from_millis(200));
        let got = send_script(addr, &[]);
        assert_eq!(got, [AT_CAPACITY_LINE.to_string()]);
        drop(held);
        std::thread::sleep(Duration::from_millis(200));
        let bye = send_script(addr, &["shutdown".to_string()]);
        assert_eq!(bye, [GOODBYE_LINE.to_string()]);
        let (_, report) = server.join().unwrap().unwrap();
        assert_eq!(report.rejected_connections, 1, "{report:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn protocol_errors_answer_in_order_and_do_not_kill_the_connection() {
        let dir = scratch("proto");
        let (addr, server) = spawn_server(dir.join("wal"), ServerConfig::default());
        let got = send_script(
            addr,
            &[
                "# comment lines are ignored".to_string(),
                "frobnicate everything".to_string(),
                admit_line("ok", 60),
                "admit broken deadline".to_string(),
                "query".to_string(),
            ],
        );
        assert_eq!(got.len(), 4, "{got:?}");
        assert!(got[0].starts_with("ERR     "), "{got:?}");
        assert_eq!(got[1], "ADMIT ok");
        assert!(got[2].starts_with("ERR     "), "{got:?}");
        assert_eq!(got[3], "QUERY 1");
        let _ = send_script(addr, &["shutdown".to_string()]);
        let (_, report) = server.join().unwrap().unwrap();
        assert_eq!(report.protocol_errors, 2, "{report:?}");
        assert_eq!(report.requests, 2, "{report:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
