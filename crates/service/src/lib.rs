//! Durable online admission: the churn engine.
//!
//! The paper's analysis exists to power admission control — a
//! bounded-delay service admits a connection only when the delay
//! analysis certifies every affected deadline. This crate is the
//! robust online layer over that test: a long-lived engine processing
//! `Admit`/`Release`/`Query` requests against a live [`dnc_net::Network`]
//! with three guarantees:
//!
//! * **Transactional mutation** ([`engine`]): every mutation is staged
//!   on a clone, certified by the [`dnc_core::resilient::ResilientRunner`]
//!   fallback chain, and committed or rolled back atomically.
//! * **Durability** ([`journal`]): committed operations hit a
//!   checksummed write-ahead journal before acknowledgment; recovery
//!   replays the journal and truncates torn tails.
//! * **Overload control** ([`queue`]): a bounded queue sheds the
//!   loosest-deadline admits first; certification runs under
//!   per-request budgets with one retry at a cheaper analysis tier.

#![warn(missing_docs)]

pub mod batch;
pub mod engine;
pub mod journal;
pub mod queue;
pub mod request;
pub mod server;

pub use batch::{Batcher, Job, RenderFn, Work};
pub use engine::{ChurnEngine, EngineConfig, EngineError, EngineStats, RecoveryInfo, Response};
pub use journal::{AdmitOp, Journal, JournalError, Op, Replay, TailDefect};
pub use queue::{Pushed, ShedQueue, ShedReason, Sheddable};
pub use request::{AdmitRequest, Request};
pub use server::{DecodeFn, ServerConfig, ServerError, ServerReport};
