//! Durable online admission: the churn engine.
//!
//! The paper's analysis exists to power admission control — a
//! bounded-delay service admits a connection only when the delay
//! analysis certifies every affected deadline. This crate is the
//! robust online layer over that test: a long-lived engine processing
//! `Admit`/`Release`/`Query` requests against a live [`dnc_net::Network`]
//! with three guarantees:
//!
//! * **Transactional mutation** ([`engine`]): every mutation is staged
//!   on a clone, certified by the [`dnc_core::resilient::ResilientRunner`]
//!   fallback chain, and committed or rolled back atomically.
//! * **Durability** ([`journal`], [`snapshot`]): committed operations
//!   hit a checksummed write-ahead journal before acknowledgment;
//!   periodic snapshots compact the journal so recovery replays only
//!   the tail past the newest snapshot; recovery truncates torn tails
//!   and falls back past torn snapshots. All write-side I/O runs
//!   through the [`fs`] backend trait, so the torture falsifier can
//!   inject storage faults at every enumerated syscall site; a failed
//!   append or publish poisons the journal handle and the server
//!   fail-stops rather than acknowledge an undurable operation.
//! * **Overload control** ([`queue`]): a bounded queue sheds the
//!   loosest-deadline admits first; certification runs under
//!   per-request budgets with one retry at a cheaper analysis tier.

#![warn(missing_docs)]

pub mod batch;
pub mod engine;
pub mod fs;
pub mod journal;
pub mod queue;
pub mod request;
pub mod server;
pub mod snapshot;

pub use batch::{Batcher, Job, RenderFn, Work, FAIL_STOP_PREFIX};
pub use engine::{ChurnEngine, EngineConfig, EngineError, EngineStats, RecoveryInfo, Response};
pub use fs::{FaultFs, FaultKind, RealFs, StorageFs, StorageHandle, FAULT_KINDS};
pub use journal::{AdmitOp, Journal, JournalError, Op, Replay, TailDefect};
pub use queue::{Pushed, ShedQueue, ShedReason, Sheddable};
pub use request::{AdmitRequest, Request};
pub use server::{DecodeFn, ServerConfig, ServerError, ServerReport};
pub use snapshot::{RecoverError, Recovered, Snapshot, SnapshotError};
