//! The churn engine: transactional, durable, overload-aware online
//! admission.
//!
//! Every `Admit`/`Release` is processed transactionally: the mutation
//! is applied to a **staged clone** of the live network, every affected
//! deadline is re-certified on the clone by a [`ResilientRunner`]
//! (Integrated first; a budget-breached pass degrades once to the
//! cheaper Decomposed tier — the retry-with-decay policy — before the
//! request is rejected with an explicit reason), and only then is the
//! clone swapped in. A failed certification never leaves the topology
//! half-mutated: rollback is dropping the clone.
//!
//! Durability: when a journal is attached, the committed operation is
//! appended and flushed **before** the engine acknowledges it.
//! [`ChurnEngine::open`] replays an existing journal to reconstruct the
//! exact committed state, truncating any torn tail. With
//! [`EngineConfig::snapshot_every`] set, the engine periodically
//! publishes a crash-safe snapshot and rotates the journal (see
//! [`crate::snapshot`]), so recovery folds the newest valid snapshot
//! and replays only the journal tail past it. Any storage failure
//! poisons the journal handle: the engine returns
//! [`JournalError::Poisoned`] on every later commit attempt and must
//! fail-stop rather than acknowledge an undurable operation.

use crate::fs::StorageHandle;
use crate::journal::{AdmitOp, Journal, JournalError, Op, TailDefect};
use crate::queue::{Pushed, ShedQueue, DEFAULT_RETRY_SEED};
use crate::request::{AdmitRequest, Request};
use crate::snapshot::{self, RecoverError, Snapshot};
use dnc_core::admission::Deadline;
use dnc_core::cache::AnalysisCache;
use dnc_core::guard::Guard;
use dnc_core::integrated::GroupTrace;
use dnc_core::resilient::{FastPath, FastReport, Outcome, ResilientReport, ResilientRunner, Tier};
use dnc_net::{Flow, FlowId, Network, NetworkError, ServerId};
use dnc_num::Rat;
use dnc_traffic::{TokenBucket, TrafficSpec};
use std::fmt;
use std::path::Path;

/// Engine tuning knobs.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Per-request analysis budget (deadline, op/segment/iteration
    /// caps), shared by the whole certification chain of one request.
    pub guard: Guard,
    /// Bound on the pending-request queue (see [`ShedQueue`]).
    pub queue_capacity: usize,
    /// Scoped-thread fan-out width for each certification run (1 =
    /// sequential; bounds are bit-identical at any width).
    pub workers: usize,
    /// Use the fast path: share memoized curve operations across
    /// requests and re-certify incrementally off the previous accepted
    /// analysis (splicing cached bounds for unaffected pairing groups).
    /// `false` runs every certification from scratch — the honest
    /// baseline the throughput harness compares against.
    pub incremental: bool,
    /// Seed for the shed queue's deterministic retry-after jitter (see
    /// [`ShedQueue::retry_after`]). Same seed + same shed history ⇒
    /// identical hints, so scripted runs stay bit-reproducible.
    pub shed_seed: u64,
    /// Publish a snapshot and rotate the journal every N committed
    /// operations (`None` disables compaction). Bounds recovery cost by
    /// churn since the last snapshot instead of lifetime history.
    pub snapshot_every: Option<u64>,
    /// Memo tables to certify against. `None` gives the engine a
    /// private cache, used on the fast path only. Providing a shared
    /// cache opts the engine into memoization even when
    /// `incremental = false`: certifications still run from scratch
    /// (no splice base), but curve-level memos warmed by other
    /// engines/stages are honored — this is how the throughput
    /// harness threads one cache through its stages.
    pub cache: Option<std::sync::Arc<AnalysisCache>>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            guard: Guard::interactive(),
            queue_capacity: 64,
            workers: 1,
            incremental: true,
            shed_seed: DEFAULT_RETRY_SEED,
            snapshot_every: None,
            cache: None,
        }
    }
}

/// Counters the engine maintains about itself (mirrored to telemetry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Committed operations (admits + releases).
    pub commits: u64,
    /// Staged mutations discarded after a failed certification.
    pub rollbacks: u64,
    /// Requests dropped by the overload policy.
    pub sheds: u64,
    /// Certifications that breached budget at the Integrated tier and
    /// were answered by the cheaper Decomposed retry.
    pub retries: u64,
    /// Journal recoveries performed.
    pub recoveries: u64,
    /// Operations replayed from the journal during recovery.
    pub recovered_ops: u64,
    /// Group commits: batches whose committed ops shared one journal
    /// record and one fsync (see [`ChurnEngine::process_batch`]).
    pub group_commits: u64,
    /// Committed operations that rode in a group commit.
    pub batched_ops: u64,
    /// Snapshots published (each followed by a journal rotation).
    pub snapshots: u64,
}

/// What a recovery found in the journal and snapshot directory.
#[derive(Clone, Debug)]
pub struct RecoveryInfo {
    /// Committed operations replayed from the journal tail (past the
    /// snapshot, if one was folded), in order.
    pub ops_replayed: usize,
    /// Torn/corrupt tail that was truncated, with the pre-truncation
    /// file length.
    pub tail: Option<(TailDefect, u64)>,
    /// Byte length of the valid journal prefix.
    pub valid_len: u64,
    /// `(generation, sequence)` of the snapshot recovery folded, if
    /// any.
    pub snapshot: Option<(u64, u64)>,
    /// Snapshots passed over as torn, corrupt, or out of range.
    pub snapshots_skipped: usize,
    /// Total committed operations across the whole history (snapshot
    /// plus tail).
    pub committed_seq: u64,
}

/// One admitted-connection row, as reported by `Query`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryEntry {
    /// The connection's name.
    pub name: String,
    /// Its current flow id in the live network.
    pub flow: FlowId,
    /// The certified end-to-end deadline.
    pub deadline: Rat,
}

/// The engine's answer to one request.
#[derive(Clone, Debug)]
pub enum Response {
    /// The connection was admitted; every affected deadline certified.
    Admitted {
        /// Request name.
        name: String,
        /// Flow id in the live network.
        flow: FlowId,
        /// The certified end-to-end bound for the new connection.
        bound: Rat,
        /// The deadline it was certified against.
        deadline: Rat,
        /// The tier that produced the certificate.
        tier: Tier,
        /// True when the Integrated pass breached its budget and the
        /// Decomposed retry produced the certificate.
        retried: bool,
    },
    /// The admit was rejected (state unchanged); the reason says why.
    Rejected {
        /// Request name.
        name: String,
        /// Explicit reason: validation failure, deadline violations, or
        /// the full degradation chain summary on budget exhaustion.
        reason: String,
    },
    /// The connection was released and the remaining set re-certified.
    Released {
        /// The released connection's name.
        name: String,
    },
    /// The release was refused (state unchanged).
    ReleaseFailed {
        /// Request name.
        name: String,
        /// Why (unknown name, or the shrunk network failed to certify).
        reason: String,
    },
    /// The admitted set (read-only).
    Queried {
        /// One row per matching admitted connection.
        entries: Vec<QueryEntry>,
    },
    /// The request was dropped by the overload policy before processing.
    Shed {
        /// Request name.
        name: String,
        /// The shed reason.
        reason: String,
        /// Deterministic, seed-derived retry-after hint in deadline
        /// ticks: load-proportional base plus jitter, so honest clients
        /// back off without stampeding back together (see
        /// [`ShedQueue::retry_after`]).
        retry_after: u64,
    },
}

impl Response {
    /// True for answers that changed engine state.
    pub fn committed(&self) -> bool {
        matches!(self, Response::Admitted { .. } | Response::Released { .. })
    }
}

/// Hard engine failures — distinct from per-request rejections, which
/// are normal [`Response`]s.
#[derive(Debug)]
pub enum EngineError {
    /// Journal I/O or decode failure: durability can no longer be
    /// guaranteed, so the operation was **not** committed.
    Journal(JournalError),
    /// The base network or base deadlines are structurally invalid.
    Base(NetworkError),
    /// A journal replay did not apply cleanly (the journal belongs to a
    /// different base network, or is internally inconsistent).
    Recovery(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Journal(e) => write!(f, "journal failure: {e}"),
            EngineError::Base(e) => write!(f, "invalid base network: {e}"),
            EngineError::Recovery(m) => write!(f, "recovery failed: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<JournalError> for EngineError {
    fn from(e: JournalError) -> EngineError {
        EngineError::Journal(e)
    }
}

/// The online churn engine. See the module docs for the transaction,
/// durability, and overload contracts.
#[derive(Debug)]
pub struct ChurnEngine {
    net: Network,
    base_flows: usize,
    base_deadlines: Vec<Deadline>,
    admitted: Vec<AdmitOp>,
    journal: Option<Journal>,
    /// Committed operations across the whole history (snapshot + live).
    committed_seq: u64,
    /// Sequence of the last published snapshot (0 = none).
    last_snapshot_seq: u64,
    /// Current snapshot generation (0 = none yet; next publish is +1).
    gen: u64,
    snapshot_every: Option<u64>,
    runner: ResilientRunner,
    queue: ShedQueue,
    stats: EngineStats,
    /// Memo tables shared across certifications — private by default,
    /// externally shared when [`EngineConfig::cache`] was provided.
    cache: std::sync::Arc<AnalysisCache>,
    /// Whether `cache` came from the config (and must be honored even
    /// with `incremental = false`).
    shared_cache: bool,
    /// The group trace of the last analysis accepted for the live
    /// network — the splice base for incremental re-certification.
    /// Always in sync with `net`: refreshed on commit, kept on rollback
    /// (the live network did not change), never set after replay-only
    /// mutations (recovery skips certification entirely).
    trace: Option<GroupTrace>,
    incremental: bool,
}

impl ChurnEngine {
    /// A purely in-memory engine over `base` (its flows and deadlines
    /// are the pre-existing, uncontested state — never released).
    pub fn new(
        base: Network,
        base_deadlines: Vec<Deadline>,
        config: EngineConfig,
    ) -> Result<ChurnEngine, EngineError> {
        for d in &base_deadlines {
            if d.flow.0 >= base.flows().len() {
                return Err(EngineError::Base(NetworkError::UnknownFlow(d.flow)));
            }
        }
        Ok(ChurnEngine {
            base_flows: base.flows().len(),
            net: base,
            base_deadlines,
            admitted: Vec::new(),
            journal: None,
            committed_seq: 0,
            last_snapshot_seq: 0,
            gen: 0,
            snapshot_every: config.snapshot_every,
            runner: ResilientRunner {
                workers: config.workers.max(1),
                ..ResilientRunner::new(config.guard.clone())
            },
            queue: ShedQueue::with_seed(config.queue_capacity, config.shed_seed),
            stats: EngineStats::default(),
            shared_cache: config.cache.is_some(),
            cache: config.cache.unwrap_or_default(),
            trace: None,
            incremental: config.incremental,
        })
    }

    /// An engine journaling to `path`. A fresh file starts an empty
    /// engine; an existing journal is **recovered**: its committed
    /// operations are replayed (structurally, no re-certification —
    /// they were certified when committed), a torn tail is truncated,
    /// and subsequent commits append after the valid prefix.
    pub fn open(
        base: Network,
        base_deadlines: Vec<Deadline>,
        config: EngineConfig,
        path: &Path,
    ) -> Result<(ChurnEngine, RecoveryInfo), EngineError> {
        ChurnEngine::open_with(base, base_deadlines, config, path, crate::fs::real())
    }

    /// [`ChurnEngine::open`] on an explicit storage backend — the
    /// torture falsifier's entry point for injecting disk faults.
    pub fn open_with(
        base: Network,
        base_deadlines: Vec<Deadline>,
        config: EngineConfig,
        path: &Path,
        fs: StorageHandle,
    ) -> Result<(ChurnEngine, RecoveryInfo), EngineError> {
        let _span = dnc_telemetry::span("service.recover");
        let mut engine = ChurnEngine::new(base, base_deadlines, config)?;
        let plan = snapshot::recover(path, fs).map_err(|e| match e {
            RecoverError::Journal(j) => EngineError::Journal(j),
            RecoverError::Layout(m) => EngineError::Recovery(m),
        })?;
        let snapshot_loaded = plan.snapshot.as_ref().map(|s| (s.gen, s.seq));
        if let Some(s) = &plan.snapshot {
            if s.base_flows != engine.base_flows {
                return Err(EngineError::Recovery(format!(
                    "snapshot was taken over {} base flow(s), this engine has {}",
                    s.base_flows, engine.base_flows
                )));
            }
            for a in &s.admits {
                engine.apply_replayed(&Op::Admit(a.clone())).map_err(|m| {
                    EngineError::Recovery(format!("folding snapshot admit {:?}: {m}", a.name))
                })?;
            }
        }
        let ops_replayed = plan.tail_ops.len();
        for op in &plan.tail_ops {
            engine
                .apply_replayed(op)
                .map_err(|m| EngineError::Recovery(format!("replaying {:?}: {m}", op.encode())))?;
        }
        engine.journal = Some(plan.journal);
        engine.committed_seq = plan.committed_seq;
        engine.last_snapshot_seq = snapshot_loaded.map_or(0, |(_, seq)| seq);
        engine.gen = plan.gen;
        if ops_replayed > 0 || plan.tail.is_some() || plan.snapshot.is_some() {
            engine.stats.recoveries += 1;
            dnc_telemetry::counter("service.recoveries", 1);
        }
        engine.stats.recovered_ops += ops_replayed as u64;
        Ok((
            engine,
            RecoveryInfo {
                ops_replayed,
                tail: plan.tail,
                valid_len: plan.valid_len,
                snapshot: snapshot_loaded,
                snapshots_skipped: plan.snapshots_skipped,
                committed_seq: plan.committed_seq,
            },
        ))
    }

    /// Apply a journaled op structurally (recovery path: certification
    /// already happened when the op was committed).
    fn apply_replayed(&mut self, op: &Op) -> Result<(), String> {
        match op {
            Op::Admit(a) => {
                let flow = build_flow(&a.clone().into()).map_err(|r| r.to_string())?;
                self.net.add_flow(flow).map_err(|e| e.to_string())?;
                self.admitted.push(a.clone());
                Ok(())
            }
            Op::Release { name } => {
                let idx = self
                    .admitted
                    .iter()
                    .position(|a| a.name == *name)
                    .ok_or_else(|| format!("release of unknown connection {name:?}"))?;
                self.net
                    .remove_flow(FlowId(self.base_flows + idx))
                    .map_err(|e| e.to_string())?;
                self.admitted.remove(idx);
                Ok(())
            }
        }
    }

    /// The live network (base + admitted flows).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Engine self-counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Currently admitted connections, in admission order.
    pub fn admitted(&self) -> impl Iterator<Item = QueryEntry> + '_ {
        self.admitted.iter().enumerate().map(|(i, a)| QueryEntry {
            name: a.name.clone(),
            flow: FlowId(self.base_flows + i),
            deadline: a.deadline,
        })
    }

    /// Every deadline the engine must keep certified, in the live
    /// network's id space.
    pub fn deadlines(&self) -> Vec<Deadline> {
        let mut ds = self.base_deadlines.clone();
        ds.extend(self.admitted.iter().enumerate().map(|(i, a)| Deadline {
            flow: FlowId(self.base_flows + i),
            deadline: a.deadline,
        }));
        ds
    }

    /// Enqueue a request under the overload policy. Returns the shed
    /// response(s) produced immediately (the incoming request's, or a
    /// displaced victim's); enqueued requests answer later via
    /// [`ChurnEngine::drain`].
    pub fn submit(&mut self, req: Request) -> Vec<Response> {
        match self.queue.push(req) {
            Pushed::Enqueued => Vec::new(),
            Pushed::Displaced(victim) => {
                vec![self.shed_response(victim, "displaced by a tighter-deadline admit")]
            }
            Pushed::Shed(incoming, reason) => {
                let reason = reason.to_string();
                vec![self.shed_response(incoming, &reason)]
            }
        }
    }

    fn shed_response(&mut self, req: Request, reason: &str) -> Response {
        self.stats.sheds += 1;
        dnc_telemetry::counter("service.sheds", 1);
        let name = match req {
            Request::Admit(a) => a.name,
            Request::Release { name } => name,
            Request::Query { name } => name.unwrap_or_default(),
        };
        Response::Shed {
            name,
            reason: reason.to_string(),
            retry_after: self.queue.retry_after(),
        }
    }

    /// Process every queued request in FIFO order.
    ///
    /// # Errors
    /// Stops at the first [`EngineError`] (journal failure mid-drain);
    /// requests already answered are lost to the caller, but engine
    /// state stays consistent (the failed op was not committed).
    pub fn drain(&mut self) -> Result<Vec<Response>, EngineError> {
        let mut responses = Vec::new();
        while let Some(req) = self.queue.pop() {
            responses.push(self.process(req)?);
        }
        Ok(responses)
    }

    /// Drain the queue through the group-commit path: pop up to `max`
    /// requests at a time and run each chunk through
    /// [`ChurnEngine::process_batch`], so every chunk's committed ops
    /// share one journal record and one fsync. FIFO order and response
    /// order are identical to [`ChurnEngine::drain`].
    ///
    /// # Errors
    /// As for [`ChurnEngine::process_batch`].
    pub fn drain_batched(&mut self, max: usize) -> Result<Vec<Response>, EngineError> {
        let max = max.max(1);
        let mut responses = Vec::new();
        loop {
            let mut chunk = Vec::with_capacity(max);
            while chunk.len() < max {
                match self.queue.pop() {
                    Some(req) => chunk.push(req),
                    None => break,
                }
            }
            if chunk.is_empty() {
                return Ok(responses);
            }
            responses.extend(self.process_batch(chunk)?);
        }
    }

    /// Process one request immediately (bypassing the queue).
    ///
    /// # Errors
    /// Only journal failures are errors; rejections are [`Response`]s.
    pub fn process(&mut self, req: Request) -> Result<Response, EngineError> {
        match self.stage(req) {
            Staged::Done(ack) => Ok(ack.into_response()),
            Staged::Commit {
                op,
                net,
                trace,
                ack,
            } => {
                // Durability before acknowledgment: journal first, then
                // swap the staged state in.
                if let Some(j) = self.journal.as_mut() {
                    j.append(&op)?;
                }
                self.apply_commit(&op, net, trace);
                self.maybe_snapshot()?;
                Ok(ack.into_response())
            }
        }
    }

    /// Process a batch of requests under **group commit**: each request
    /// is staged and certified in arrival order against the evolving
    /// in-memory state, every committed op of the batch lands in *one*
    /// journal record flushed by *one* fsync, and only after that fsync
    /// are the responses produced — acknowledged together, exactly as
    /// they were ordered. A crash therefore preserves the whole
    /// acknowledged batch or none of it (the journal record is atomic
    /// on replay), and acknowledged commits are never reordered:
    /// journal order == staging order == response order.
    ///
    /// # Errors
    /// A journal failure fails the whole batch with **nothing
    /// acknowledged**. As with [`ChurnEngine::process`], the error is
    /// fatal to the durability contract and the engine must be dropped
    /// (in-memory state may already include the batch's staged
    /// commits, but no caller ever saw them acknowledged).
    pub fn process_batch(&mut self, reqs: Vec<Request>) -> Result<Vec<Response>, EngineError> {
        let _span = dnc_telemetry::span("service.batch");
        let mut acks = Vec::with_capacity(reqs.len());
        let mut ops = Vec::new();
        for req in reqs {
            match self.stage(req) {
                Staged::Done(ack) => acks.push(ack),
                Staged::Commit {
                    op,
                    net,
                    trace,
                    ack,
                } => {
                    self.apply_commit(&op, net, trace);
                    ops.push(*op);
                    acks.push(ack);
                }
            }
        }
        if let Some(j) = self.journal.as_mut() {
            j.append_batch(&ops)?;
        }
        if !ops.is_empty() {
            self.stats.group_commits += 1;
            self.stats.batched_ops += ops.len() as u64;
            dnc_telemetry::counter("service.group_commits", 1);
            dnc_telemetry::counter("service.batched_ops", ops.len() as u64);
            self.maybe_snapshot()?;
        }
        Ok(acks.into_iter().map(Ack::into_response).collect())
    }

    /// Certify one request against the current state without mutating
    /// it: the returned [`Staged::Commit`] carries everything a commit
    /// needs (the op to journal, the staged network/trace to swap in,
    /// and the acknowledgment to hand back **after** the journal fsync).
    fn stage(&mut self, req: Request) -> Staged {
        match req {
            Request::Admit(r) => self.stage_admit(r),
            Request::Release { name } => self.stage_release(&name),
            Request::Query { name } => Staged::Done(self.query_ack(name.as_deref())),
        }
    }

    /// Swap a staged, journaled commit into the live state.
    fn apply_commit(&mut self, op: &Op, net: Network, trace: Option<GroupTrace>) {
        match op {
            Op::Admit(a) => self.admitted.push(a.clone()),
            Op::Release { name } => {
                if let Some(idx) = self.admitted.iter().position(|a| a.name == *name) {
                    self.admitted.remove(idx);
                }
            }
        }
        self.net = net;
        self.trace = trace;
        self.committed_seq += 1;
        self.stats.commits += 1;
        dnc_telemetry::counter("service.commits", 1);
    }

    /// Publish a snapshot and rotate the journal once enough ops have
    /// committed since the last one. Called after the commit's journal
    /// record is durable, so a snapshot never precedes its own history.
    ///
    /// # Errors
    /// A failed publish or rotation poisons the journal: the already-
    /// journaled ops stay durable and recoverable, but the engine must
    /// fail-stop (the caller surfaces the error and shuts down).
    fn maybe_snapshot(&mut self) -> Result<(), EngineError> {
        let Some(every) = self.snapshot_every else {
            return Ok(());
        };
        if self.committed_seq - self.last_snapshot_seq < every.max(1) {
            return Ok(());
        }
        let Some(j) = self.journal.as_mut() else {
            return Ok(());
        };
        let _span = dnc_telemetry::span("service.snapshot");
        let gen = self.gen + 1;
        let snap = Snapshot {
            gen,
            seq: self.committed_seq,
            base_flows: self.base_flows,
            admits: self.admitted.clone(),
        };
        let fs = j.storage();
        let path = j.path().to_path_buf();
        if let Err(e) = snapshot::publish_snapshot(fs.as_ref(), &path, &snap) {
            let why = format!("snapshot publish failed: {e}");
            j.poison(&why);
            return Err(EngineError::Journal(JournalError::Poisoned(why)));
        }
        j.rotate(gen, self.committed_seq)?;
        snapshot::prune_snapshots(fs.as_ref(), &path, gen);
        self.gen = gen;
        self.last_snapshot_seq = self.committed_seq;
        self.stats.snapshots += 1;
        dnc_telemetry::counter("service.snapshots", 1);
        Ok(())
    }

    /// Total committed operations across the whole history (snapshot
    /// plus everything journaled since).
    pub fn committed_seq(&self) -> u64 {
        self.committed_seq
    }

    fn query_ack(&self, name: Option<&str>) -> Ack {
        let entries = self
            .admitted()
            .filter(|e| name.is_none_or(|n| e.name == n))
            .collect();
        Ack::Queried { entries }
    }

    /// Run the guarded certification chain on a staged network. On the
    /// fast path this shares the memo cache across requests and — given
    /// a splice base — re-analyzes only the pairing groups reachable
    /// from the mutation's `seed` servers; otherwise every run is from
    /// scratch.
    fn certify(&self, staged: &Network, prev: Option<(&GroupTrace, &[ServerId])>) -> FastReport {
        if !self.incremental && !self.shared_cache {
            return self.runner.analyze_fast(staged, None);
        }
        // Non-incremental engines with a shared cache memoize curve
        // operations but never splice off a previous trace.
        let prev = if self.incremental { prev } else { None };
        let fast = self.runner.analyze_fast(
            staged,
            Some(FastPath {
                cache: &self.cache,
                prev,
            }),
        );
        if let Some((dirty, _total)) = fast.dirty_units {
            dnc_telemetry::counter("churn.dirty_groups", dirty as u64);
        }
        fast
    }

    fn stage_admit(&mut self, req: AdmitRequest) -> Staged {
        let _span = dnc_telemetry::span("service.admit");
        let name = req.name.clone();
        if let Err(reason) = self.validate_admit(&req) {
            return Staged::Done(self.reject_ack(name, reason));
        }
        let flow = match build_flow(&req) {
            Ok(f) => f,
            Err(reason) => return Staged::Done(self.reject_ack(name, reason.to_string())),
        };

        // Stage: mutate a clone, never the live network.
        let mut staged = self.net.clone();
        let id = match staged.add_flow(flow) {
            Ok(id) => id,
            Err(e) => return Staged::Done(self.reject_ack(name, format!("invalid flow: {e}"))),
        };
        if let Err(e) = staged.validate() {
            return Staged::Done(self.reject_ack(name, format!("structural rejection: {e}")));
        }

        // Certify: the runner embodies retry-with-decay (Integrated,
        // then the cheaper Decomposed on budget breach). The new flow
        // only changes inputs along its own route, so those servers
        // seed the incremental dirty set.
        let mut deadlines = self.deadlines();
        deadlines.push(Deadline {
            flow: id,
            deadline: req.deadline,
        });
        let seed = req.route.clone();
        let fast = self.certify(&staged, self.trace.as_ref().map(|t| (t, seed.as_slice())));
        let report = fast.report;
        let retried = was_retried(&report);
        if retried {
            self.stats.retries += 1;
            dnc_telemetry::counter("service.retries", 1);
        }
        let Some(bounds) = report.bounds() else {
            return Staged::Done(self.reject_ack(
                name,
                format!("no bound within budget: {}", report.chain_summary()),
            ));
        };
        let violated: Vec<String> = deadlines
            .iter()
            .filter(|d| bounds.bound(d.flow) > d.deadline)
            .map(|d| self.describe_deadline(d, &req.name, id))
            .collect();
        if !violated.is_empty() {
            return Staged::Done(
                self.reject_ack(name, format!("deadline violation: {}", violated.join(", "))),
            );
        }

        // Certified: hand the caller everything the commit needs. The
        // acknowledgment is only released after the journal fsync.
        let bound = bounds.bound(id);
        let tier = report.tier();
        let admit_op: AdmitOp = req.into();
        let deadline = admit_op.deadline;
        Staged::Commit {
            op: Box::new(Op::Admit(admit_op)),
            net: staged,
            trace: fast.trace,
            ack: Ack::Admitted {
                name,
                flow: id,
                bound,
                deadline,
                tier,
                retried,
            },
        }
    }

    fn stage_release(&mut self, name: &str) -> Staged {
        let _span = dnc_telemetry::span("service.release");
        let Some(idx) = self.admitted.iter().position(|a| a.name == name) else {
            return Staged::Done(Ack::ReleaseFailed {
                name: name.to_string(),
                reason: "no admitted connection with this name".into(),
            });
        };
        let victim = FlowId(self.base_flows + idx);
        // The removal only changes inputs along the victim's route;
        // those servers seed the incremental dirty set.
        let seed: Vec<ServerId> = self
            .net
            .flows()
            .get(victim.0)
            .map(|f| f.route.clone())
            .unwrap_or_default();
        let mut staged = self.net.clone();
        if let Err(e) = staged.remove_flow(victim) {
            return Staged::Done(Ack::ReleaseFailed {
                name: name.to_string(),
                reason: format!("remove failed: {e}"),
            });
        }
        // Remaining deadlines in the post-removal id space: admitted
        // flows after `idx` shift down by one.
        let mut deadlines = self.base_deadlines.clone();
        for (j, a) in self.admitted.iter().enumerate() {
            if j == idx {
                continue;
            }
            let shifted = if j > idx { j - 1 } else { j };
            deadlines.push(Deadline {
                flow: FlowId(self.base_flows + shifted),
                deadline: a.deadline,
            });
        }
        // Rebase the previous trace into the post-removal id space so
        // the splice can reuse the untouched groups' recorded stages.
        let prev_trace = self.trace.clone().map(|mut t| {
            t.remap_release(victim);
            t
        });
        let fast = self.certify(&staged, prev_trace.as_ref().map(|t| (t, seed.as_slice())));
        let report = fast.report;
        if was_retried(&report) {
            self.stats.retries += 1;
            dnc_telemetry::counter("service.retries", 1);
        }
        let Some(bounds) = report.bounds() else {
            self.stats.rollbacks += 1;
            dnc_telemetry::counter("service.rollbacks", 1);
            return Staged::Done(Ack::ReleaseFailed {
                name: name.to_string(),
                reason: format!(
                    "remaining set no longer certifies within budget: {}",
                    report.chain_summary()
                ),
            });
        };
        if let Some(d) = deadlines.iter().find(|d| bounds.bound(d.flow) > d.deadline) {
            self.stats.rollbacks += 1;
            dnc_telemetry::counter("service.rollbacks", 1);
            return Staged::Done(Ack::ReleaseFailed {
                name: name.to_string(),
                reason: format!(
                    "release breaks a remaining deadline ({} > {} for {})",
                    bounds.bound(d.flow),
                    d.deadline,
                    d.flow
                ),
            });
        }

        Staged::Commit {
            op: Box::new(Op::Release {
                name: name.to_string(),
            }),
            net: staged,
            trace: fast.trace,
            ack: Ack::Released {
                name: name.to_string(),
            },
        }
    }

    fn reject_ack(&mut self, name: String, reason: String) -> Ack {
        self.stats.rollbacks += 1;
        dnc_telemetry::counter("service.rollbacks", 1);
        Ack::Rejected { name, reason }
    }

    fn describe_deadline(&self, d: &Deadline, candidate: &str, candidate_id: FlowId) -> String {
        if d.flow == candidate_id {
            format!("candidate {candidate:?} itself")
        } else {
            match self
                .admitted
                .iter()
                .enumerate()
                .find(|(i, _)| FlowId(self.base_flows + i) == d.flow)
            {
                Some((_, a)) => format!("admitted {:?}", a.name),
                None => format!("base flow {}", d.flow),
            }
        }
    }

    fn validate_admit(&self, req: &AdmitRequest) -> Result<(), String> {
        if req.name.is_empty() || req.name.chars().any(char::is_whitespace) {
            return Err("name must be non-empty without whitespace".into());
        }
        if self.net.flows().iter().any(|f| f.name == req.name) {
            return Err(format!("a live flow is already named {:?}", req.name));
        }
        if req.buckets.is_empty() {
            return Err("at least one (σ, ρ) bucket is required".into());
        }
        if req
            .buckets
            .iter()
            .any(|(s, r)| s.is_negative() || r.is_negative())
        {
            return Err("bucket parameters must be non-negative".into());
        }
        if req.peak.is_some_and(|p| !p.is_positive()) {
            return Err("peak rate must be positive".into());
        }
        if !req.deadline.is_positive() {
            return Err("deadline must be positive".into());
        }
        Ok(())
    }

    /// A deterministic, human-readable rendering of the committed
    /// state: the base-flow count followed by each admitted operation
    /// in admission order. Two engines with equal canonical state hold
    /// identical networks and deadline sets (given the same base).
    pub fn canonical_state(&self) -> String {
        let mut s = format!("base {}\n", self.base_flows);
        for a in &self.admitted {
            s.push_str(&Op::Admit(a.clone()).encode());
            s.push('\n');
        }
        s
    }

    /// FNV-1a 64 digest of [`ChurnEngine::canonical_state`] — cheap
    /// state-identity checks for the kill-point recovery harness.
    pub fn state_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.canonical_state().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// A staged acknowledgment: everything a [`Response`] will say, held
/// back until the journal record that justifies it is durable. Both
/// commit paths (single-op and group commit) stage through this type,
/// so no code path can hand out an acknowledgment before its fsync.
enum Ack {
    /// Mirrors [`Response::Admitted`].
    Admitted {
        name: String,
        flow: FlowId,
        bound: Rat,
        deadline: Rat,
        tier: Tier,
        retried: bool,
    },
    /// Mirrors [`Response::Rejected`].
    Rejected { name: String, reason: String },
    /// Mirrors [`Response::Released`].
    Released { name: String },
    /// Mirrors [`Response::ReleaseFailed`].
    ReleaseFailed { name: String, reason: String },
    /// Mirrors [`Response::Queried`].
    Queried { entries: Vec<QueryEntry> },
}

impl Ack {
    /// Convert into the public response — called only after the owning
    /// commit path has made the op durable (or determined that no state
    /// changed).
    fn into_response(self) -> Response {
        match self {
            Ack::Admitted {
                name,
                flow,
                bound,
                deadline,
                tier,
                retried,
            } => Response::Admitted {
                name,
                flow,
                bound,
                deadline,
                tier,
                retried,
            },
            Ack::Rejected { name, reason } => Response::Rejected { name, reason },
            Ack::Released { name } => Response::Released { name },
            Ack::ReleaseFailed { name, reason } => Response::ReleaseFailed { name, reason },
            Ack::Queried { entries } => Response::Queried { entries },
        }
    }
}

/// The outcome of staging one request against the current state.
enum Staged {
    /// Certified: commit by journaling `op`, swapping `net`/`trace` in,
    /// and only then releasing `ack`. The op is boxed to keep this
    /// transient enum's variants close in size.
    Commit {
        op: Box<Op>,
        net: Network,
        trace: Option<GroupTrace>,
        ack: Ack,
    },
    /// No state change (rejection, failed release, query): answerable
    /// immediately, nothing to journal.
    Done(Ack),
}

/// True when the Integrated tier breached its budget and the Decomposed
/// retry produced the answer — the retry-with-decay path. The fast path
/// may record two Integrated attempts (incremental splice, then full),
/// so any budget breach at that tier counts.
fn was_retried(report: &ResilientReport) -> bool {
    report.tier() == Tier::Decomposed
        && report
            .attempts()
            .iter()
            .any(|a| a.tier == Tier::Integrated && matches!(a.outcome, Outcome::Budget(_)))
}

/// Build the network flow for an admit request. Validation must already
/// have run: this only converts shapes.
fn build_flow(req: &AdmitRequest) -> Result<Flow, String> {
    if req.buckets.is_empty() {
        return Err("no buckets".into());
    }
    let buckets = req
        .buckets
        .iter()
        .map(|&(sigma, rho)| {
            if sigma.is_negative() || rho.is_negative() {
                Err("negative bucket parameter".to_string())
            } else {
                Ok(TokenBucket::new(sigma, rho))
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    if req.peak.is_some_and(|p| !p.is_positive()) {
        return Err("non-positive peak".into());
    }
    Ok(Flow {
        name: req.name.clone(),
        spec: TrafficSpec::new(buckets, req.peak),
        route: req.route.clone(),
        priority: req.priority,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_net::Server;
    use dnc_num::{int, rat};
    use std::path::PathBuf;

    fn base() -> Network {
        let mut net = Network::new();
        for i in 0..4 {
            net.add_server(Server::unit_fifo(format!("hop{i}")));
        }
        net
    }

    fn admit_req(name: &str, rho: Rat, deadline: Rat) -> Request {
        Request::Admit(AdmitRequest {
            name: name.into(),
            route: (0..4).map(dnc_net::ServerId).collect(),
            // No peak cap: the σ-burst lands at once, so even a lone
            // flow has a strictly positive bound (tests rely on that).
            buckets: vec![(int(1), rho)],
            peak: None,
            priority: 0,
            deadline,
        })
    }

    fn engine() -> ChurnEngine {
        ChurnEngine::new(base(), Vec::new(), EngineConfig::default()).unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dnc_engine_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dnc_engine_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn admit_release_round_trip() {
        let mut e = engine();
        let r = e.process(admit_req("a", rat(1, 32), int(50))).unwrap();
        let Response::Admitted {
            bound, deadline, ..
        } = &r
        else {
            panic!("expected admission, got {r:?}");
        };
        assert!(*bound <= *deadline);
        assert_eq!(e.network().flows().len(), 1);
        assert_eq!(e.deadlines().len(), 1);

        let r = e.process(Request::Release { name: "a".into() }).unwrap();
        assert!(matches!(r, Response::Released { .. }), "{r:?}");
        assert_eq!(e.network().flows().len(), 0);
        assert_eq!(e.stats().commits, 2);
    }

    #[test]
    fn impossible_deadline_is_rejected_and_rolled_back() {
        let mut e = engine();
        let r = e.process(admit_req("a", rat(1, 32), rat(1, 100))).unwrap();
        let Response::Rejected { reason, .. } = &r else {
            panic!("expected rejection, got {r:?}");
        };
        assert!(reason.contains("deadline violation"), "{reason}");
        assert_eq!(e.network().flows().len(), 0, "rollback must be total");
        assert_eq!(e.stats().rollbacks, 1);
    }

    #[test]
    fn admission_protects_previously_admitted_deadlines() {
        let mut e = engine();
        // Admit with a deadline exactly at the certified bound: any new
        // contention on the path must then be rejected.
        let first = e.process(admit_req("a", rat(1, 32), int(50))).unwrap();
        let Response::Admitted { bound, .. } = first else {
            panic!("first admit must pass");
        };
        let mut tight = ChurnEngine::new(base(), Vec::new(), EngineConfig::default()).unwrap();
        let r = tight.process(admit_req("a", rat(1, 32), bound)).unwrap();
        assert!(matches!(r, Response::Admitted { .. }));
        let r = tight.process(admit_req("b", rat(1, 4), bound)).unwrap();
        let Response::Rejected { reason, .. } = &r else {
            panic!("expected rejection protecting \"a\", got {r:?}");
        };
        assert!(reason.contains("deadline violation"), "{reason}");
        assert_eq!(tight.network().flows().len(), 1);
    }

    #[test]
    fn duplicate_names_and_bad_requests_are_rejected() {
        let mut e = engine();
        assert!(matches!(
            e.process(admit_req("a", rat(1, 32), int(50))).unwrap(),
            Response::Admitted { .. }
        ));
        for (req, frag) in [
            (admit_req("a", rat(1, 32), int(50)), "already named"),
            (admit_req("bad name", rat(1, 32), int(50)), "whitespace"),
            (admit_req("b", rat(1, 32), int(0)), "deadline"),
            (
                Request::Admit(AdmitRequest {
                    name: "c".into(),
                    route: vec![dnc_net::ServerId(0)],
                    buckets: vec![],
                    peak: None,
                    priority: 0,
                    deadline: int(10),
                }),
                "bucket",
            ),
        ] {
            let r = e.process(req).unwrap();
            let Response::Rejected { reason, .. } = &r else {
                panic!("expected rejection, got {r:?}");
            };
            assert!(reason.contains(frag), "{reason} !~ {frag}");
        }
        // Releasing an unknown name is a failure response, not an error.
        let r = e.process(Request::Release { name: "zz".into() }).unwrap();
        assert!(matches!(r, Response::ReleaseFailed { .. }));
    }

    #[test]
    fn query_reports_the_admitted_set() {
        let mut e = engine();
        e.process(admit_req("a", rat(1, 32), int(50))).unwrap();
        e.process(admit_req("b", rat(1, 32), int(60))).unwrap();
        let Response::Queried { entries } = e.process(Request::Query { name: None }).unwrap()
        else {
            panic!("query");
        };
        assert_eq!(entries.len(), 2);
        let Response::Queried { entries } = e
            .process(Request::Query {
                name: Some("b".into()),
            })
            .unwrap()
        else {
            panic!("query");
        };
        assert_eq!(entries.len(), 1);
        assert_eq!(entries.first().unwrap().deadline, int(60));
    }

    #[test]
    fn journal_recovery_rebuilds_identical_state() {
        let path = tmp("recover.wal");
        let _ = std::fs::remove_file(&path);
        let digest = {
            let (mut e, info) =
                ChurnEngine::open(base(), Vec::new(), EngineConfig::default(), &path).unwrap();
            assert_eq!(info.ops_replayed, 0);
            e.process(admit_req("a", rat(1, 32), int(50))).unwrap();
            e.process(admit_req("b", rat(1, 32), int(60))).unwrap();
            e.process(Request::Release { name: "a".into() }).unwrap();
            e.process(admit_req("c", rat(1, 32), int(70))).unwrap();
            e.state_digest()
        };
        let (recovered, info) =
            ChurnEngine::open(base(), Vec::new(), EngineConfig::default(), &path).unwrap();
        assert_eq!(info.ops_replayed, 4);
        assert_eq!(recovered.state_digest(), digest);
        assert_eq!(recovered.network().flows().len(), 2);
        assert_eq!(recovered.stats().recoveries, 1);
        let names: Vec<_> = recovered.admitted().map(|q| q.name).collect();
        assert_eq!(names, ["b", "c"]);
    }

    #[test]
    fn group_commit_batch_matches_serial_processing_and_recovers() {
        let path = tmp("batch.wal");
        let _ = std::fs::remove_file(&path);
        let reqs = || {
            vec![
                admit_req("a", rat(1, 32), int(50)),
                admit_req("b", rat(1, 32), int(60)),
                Request::Query { name: None },
                Request::Release { name: "a".into() },
                admit_req("c", rat(1, 32), int(70)),
            ]
        };
        let (mut batched, _) =
            ChurnEngine::open(base(), Vec::new(), EngineConfig::default(), &path).unwrap();
        let batch_answers = batched.process_batch(reqs()).unwrap();
        assert_eq!(batch_answers.len(), 5);

        // Bit-identical to serial one-at-a-time processing.
        let mut serial = engine();
        for (i, req) in reqs().into_iter().enumerate() {
            let want = serial.process(req).unwrap();
            assert_eq!(
                format!("{:?}", batch_answers.get(i).unwrap()),
                format!("{want:?}"),
                "response {i} diverged from serial processing"
            );
        }
        assert_eq!(batched.canonical_state(), serial.canonical_state());
        assert_eq!(batched.stats().commits, 4);
        assert_eq!(batched.stats().group_commits, 1);
        assert_eq!(batched.stats().batched_ops, 4);

        // The journal holds the whole batch and recovery lands exactly
        // on the acknowledged state.
        let digest = batched.state_digest();
        drop(batched);
        let replayed = crate::journal::replay(&path).unwrap();
        assert_eq!(replayed.ops.len(), 4);
        assert!(replayed.tail.is_none());
        let (recovered, info) =
            ChurnEngine::open(base(), Vec::new(), EngineConfig::default(), &path).unwrap();
        assert_eq!(info.ops_replayed, 4);
        assert_eq!(recovered.state_digest(), digest);
    }

    #[test]
    fn drain_batched_answers_like_drain_in_fifo_order() {
        let mut a = engine();
        let mut b = engine();
        let reqs = || {
            vec![
                admit_req("x", rat(1, 32), int(50)),
                admit_req("y", rat(1, 32), int(60)),
                Request::Release { name: "x".into() },
                Request::Query { name: None },
            ]
        };
        for r in reqs() {
            assert!(a.submit(r).is_empty());
        }
        for r in reqs() {
            assert!(b.submit(r).is_empty());
        }
        let one_by_one = a.drain().unwrap();
        let grouped = b.drain_batched(3).unwrap();
        assert_eq!(one_by_one.len(), grouped.len());
        for (i, (x, y)) in one_by_one.iter().zip(&grouped).enumerate() {
            assert_eq!(format!("{x:?}"), format!("{y:?}"), "answer {i} diverged");
        }
        assert_eq!(a.canonical_state(), b.canonical_state());
    }

    #[test]
    fn snapshot_compaction_bounds_recovery_to_the_tail() {
        let dir = tmpdir("compact");
        let path = dir.join("engine.wal");
        let cfg = EngineConfig {
            snapshot_every: Some(2),
            ..EngineConfig::default()
        };
        let digest = {
            let (mut e, _) = ChurnEngine::open(base(), Vec::new(), cfg.clone(), &path).unwrap();
            e.process(admit_req("a", rat(1, 32), int(50))).unwrap();
            e.process(admit_req("b", rat(1, 32), int(60))).unwrap(); // snapshot 1 @ seq 2
            e.process(Request::Release { name: "a".into() }).unwrap();
            e.process(admit_req("c", rat(1, 32), int(70))).unwrap(); // snapshot 2 @ seq 4
            e.process(admit_req("d", rat(1, 32), int(80))).unwrap(); // journal tail
            assert_eq!(e.stats().snapshots, 2);
            assert_eq!(e.committed_seq(), 5);
            e.state_digest()
        };
        let (rec, info) = ChurnEngine::open(base(), Vec::new(), cfg, &path).unwrap();
        assert_eq!(rec.state_digest(), digest);
        assert_eq!(info.snapshot, Some((2, 4)));
        assert_eq!(info.ops_replayed, 1, "recovery must replay only the tail");
        assert_eq!(info.committed_seq, 5);
        assert_eq!(info.snapshots_skipped, 0);
        let names: Vec<_> = rec.admitted().map(|q| q.name).collect();
        assert_eq!(names, ["b", "c", "d"]);
    }

    #[test]
    fn engine_fail_stops_after_a_storage_fault() {
        use crate::fs::{FaultFs, FaultKind};
        use std::sync::Arc;
        let dir = tmpdir("failstop");
        let path = dir.join("engine.wal");
        // Journal creation consumes sites 0..3; site 3 is the first
        // commit's append write.
        let fs: StorageHandle = Arc::new(FaultFs::new(3, FaultKind::Enospc));
        let (mut e, _) =
            ChurnEngine::open_with(base(), Vec::new(), EngineConfig::default(), &path, fs).unwrap();
        let first = e.process(admit_req("a", rat(1, 32), int(50)));
        assert!(
            matches!(first, Err(EngineError::Journal(JournalError::Io(_)))),
            "{first:?}"
        );
        let second = e.process(admit_req("b", rat(1, 32), int(60)));
        assert!(
            matches!(second, Err(EngineError::Journal(JournalError::Poisoned(_)))),
            "fail-stop: every later commit must see the poisoned handle, got {second:?}"
        );
        drop(e);
        // A real-backend recovery sees a consistent, empty history.
        let (rec, info) =
            ChurnEngine::open(base(), Vec::new(), EngineConfig::default(), &path).unwrap();
        assert_eq!(info.committed_seq, 0);
        assert_eq!(rec.network().flows().len(), 0);
    }

    #[test]
    fn shed_responses_carry_deterministic_retry_after_hints() {
        let cfg = EngineConfig {
            queue_capacity: 1,
            ..EngineConfig::default()
        };
        let hints = |seed: u64| -> Vec<u64> {
            let mut e = ChurnEngine::new(
                base(),
                Vec::new(),
                EngineConfig {
                    shed_seed: seed,
                    ..cfg.clone()
                },
            )
            .unwrap();
            e.submit(admit_req("keep", rat(1, 32), int(5)));
            let mut out = Vec::new();
            for i in 0..4 {
                for resp in e.submit(admit_req(&format!("late{i}"), rat(1, 32), int(90))) {
                    let Response::Shed { retry_after, .. } = resp else {
                        panic!("expected a shed, got {resp:?}");
                    };
                    assert!(retry_after > 0);
                    out.push(retry_after);
                }
            }
            out
        };
        assert_eq!(hints(11), hints(11), "same seed must hint identically");
        assert_ne!(hints(11), hints(12), "seeds must decorrelate the jitter");
    }

    #[test]
    fn overload_sheds_loosest_admit_first() {
        let mut e = ChurnEngine::new(
            base(),
            Vec::new(),
            EngineConfig {
                queue_capacity: 2,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        assert!(e.submit(admit_req("loose", rat(1, 32), int(90))).is_empty());
        assert!(e.submit(admit_req("mid", rat(1, 32), int(50))).is_empty());
        let shed = e.submit(admit_req("tight", rat(1, 32), int(10)));
        assert_eq!(shed.len(), 1);
        assert!(
            matches!(&shed.first().unwrap(), Response::Shed { name, .. } if name == "loose"),
            "{shed:?}"
        );
        assert_eq!(e.stats().sheds, 1);
        let answers = e.drain().unwrap();
        assert_eq!(answers.len(), 2);
        assert!(answers.iter().all(Response::committed));
        let names: Vec<_> = e.admitted().map(|q| q.name).collect();
        assert_eq!(names, ["mid", "tight"]);
    }
}
