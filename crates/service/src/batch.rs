//! Group-commit scheduler: the piece between the socket front end and
//! the engine's batch commit path.
//!
//! Connection threads decode protocol lines into [`Job`]s — a request
//! (or a pre-rendered reply line) still attached to its connection's
//! reply channel — and hand them to a single [`Batcher`]. The batcher
//! reuses the engine's [`ShedQueue`] as backpressure (sheds and
//! displacements are answered immediately, with the queue's
//! deterministic retry-after hint), then drains the queue in chunks of
//! at most `batch` requests through [`ChurnEngine::process_batch`]:
//! every chunk's committed ops share **one** journal record and **one**
//! fsync, and only after that fsync are the chunk's acknowledgments
//! delivered — in exactly the order the ops were staged, so
//! acknowledged commits are never reordered.
//!
//! The type is deliberately I/O-free (reply channels are plain `mpsc`
//! senders), so the ordering and shedding contracts are testable
//! without sockets; `server.rs` supplies the TCP plumbing.

use crate::engine::{ChurnEngine, EngineError, Response};
use crate::queue::{Pushed, ShedQueue, Sheddable};
use crate::request::Request;
use dnc_num::Rat;
use std::sync::mpsc::Sender;

/// Renders an engine response into one protocol reply payload. The
/// front end supplies this so the service crate stays
/// presentation-free.
pub type RenderFn = dyn Fn(&Response) -> String + Send + Sync;

/// Prefix of the terminal reply sent to jobs caught behind a storage
/// failure (the failure cause is appended). The one piece of
/// presentation this module owns: when the journal is poisoned there is
/// no engine response to render, but every pending client is still owed
/// a line saying the server is fail-stop.
pub const FAIL_STOP_PREFIX: &str = "ERR     fail-stop: ";

/// One unit of connection work awaiting the commit loop.
pub struct Job {
    /// What to do.
    pub work: Work,
    /// Where the rendered reply goes (the owning connection's writer).
    pub reply: Sender<String>,
}

/// Payload of a [`Job`].
pub enum Work {
    /// A decoded request to stage and group-commit.
    Op(Request),
    /// A pre-rendered reply (protocol error, shutdown acknowledgment)
    /// that rides the queue so a connection's replies keep arrival
    /// order. Never shed, never journaled.
    Line(String),
}

impl Sheddable for Job {
    fn shed_deadline(&self) -> Option<Rat> {
        match &self.work {
            Work::Op(req) => req.shed_deadline(),
            Work::Line(_) => None,
        }
    }
}

/// A bounded shed queue in front of [`ChurnEngine::process_batch`].
pub struct Batcher {
    engine: ChurnEngine,
    queue: ShedQueue<Job>,
    batch: usize,
    sheds: u64,
}

impl Batcher {
    /// A batcher committing at most `batch` ops per journal record
    /// (clamped to ≥ 1), shedding past `queue_capacity` pending jobs.
    pub fn new(
        engine: ChurnEngine,
        queue_capacity: usize,
        shed_seed: u64,
        batch: usize,
    ) -> Batcher {
        Batcher {
            engine,
            queue: ShedQueue::with_seed(queue_capacity, shed_seed),
            batch: batch.max(1),
            sheds: 0,
        }
    }

    /// Queued jobs not yet committed.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Jobs answered with a SHED reply instead of being committed.
    pub fn sheds(&self) -> u64 {
        self.sheds
    }

    /// The engine behind the queue (read-only).
    pub fn engine(&self) -> &ChurnEngine {
        &self.engine
    }

    /// Tear down, returning the engine (for footers/final state).
    pub fn into_engine(self) -> ChurnEngine {
        self.engine
    }

    /// Offer one job under the overload policy. Sheds and displaced
    /// victims are answered *immediately* with the queue's
    /// deterministic retry-after hint; surviving jobs wait for
    /// [`Batcher::flush`].
    pub fn enqueue(&mut self, job: Job, render: &RenderFn) {
        match self.queue.push(job) {
            Pushed::Enqueued => {}
            Pushed::Displaced(victim) => {
                let hint = self.queue.retry_after();
                self.reply_shed(
                    victim,
                    "displaced by a tighter-deadline admit",
                    hint,
                    render,
                );
            }
            Pushed::Shed(incoming, reason) => {
                let hint = self.queue.retry_after();
                self.reply_shed(incoming, &reason.to_string(), hint, render);
            }
        }
    }

    /// Answer a shed job right away — nothing was committed, so this
    /// path owes no fsync (unlike `send_acks`).
    fn reply_shed(&mut self, job: Job, reason: &str, retry_after: u64, render: &RenderFn) {
        self.sheds += 1;
        dnc_telemetry::counter("server.sheds", 1);
        let line = match job.work {
            Work::Op(req) => {
                let name = match req {
                    Request::Admit(a) => a.name,
                    Request::Release { name } => name,
                    Request::Query { name } => name.unwrap_or_default(),
                };
                render(&Response::Shed {
                    name,
                    reason: reason.to_string(),
                    retry_after,
                })
            }
            // Unreachable in practice (Line jobs are unsheddable), but
            // losing a pre-rendered line would be worse than sending it.
            Work::Line(line) => line,
        };
        let _ = job.reply.send(line);
    }

    /// Drain the whole backlog in chunks of at most `batch` jobs: each
    /// chunk's ops go through one group commit, then the chunk's reply
    /// lines are delivered in staging order.
    ///
    /// # Errors
    /// A journal failure aborts with nothing from the failed chunk
    /// acknowledged (see [`ChurnEngine::process_batch`]).
    pub fn flush(&mut self, render: &RenderFn) -> Result<u64, EngineError> {
        let mut answered = 0;
        loop {
            let mut chunk = Vec::with_capacity(self.batch);
            while chunk.len() < self.batch {
                match self.queue.pop() {
                    Some(job) => chunk.push(job),
                    None => break,
                }
            }
            if chunk.is_empty() {
                return Ok(answered);
            }
            answered += chunk.len() as u64;
            self.commit_chunk(chunk, render)?;
        }
    }

    fn commit_chunk(&mut self, chunk: Vec<Job>, render: &RenderFn) -> Result<(), EngineError> {
        enum Pending {
            Op(Sender<String>),
            Line(Sender<String>, String),
        }
        let mut reqs = Vec::with_capacity(chunk.len());
        let mut pending = Vec::with_capacity(chunk.len());
        for job in chunk {
            match job.work {
                Work::Op(req) => {
                    reqs.push(req);
                    pending.push(Pending::Op(job.reply));
                }
                Work::Line(line) => pending.push(Pending::Line(job.reply, line)),
            }
        }
        // One journal record, one fsync, for every committed op below.
        let responses = match self.engine.process_batch(reqs) {
            Ok(r) => r,
            Err(e) => {
                // Fail-stop: nothing in this chunk was acknowledged and
                // nothing further ever will be. Tell every waiting
                // client so instead of silently dropping its reply
                // channel (pre-rendered protocol-error lines are still
                // accurate and keep arrival order).
                let line = format!("{FAIL_STOP_PREFIX}{e}");
                for p in pending {
                    let _ = match p {
                        Pending::Op(tx) => tx.send(line.clone()),
                        Pending::Line(tx, l) => tx.send(l),
                    };
                }
                return Err(e);
            }
        };
        let mut rendered = responses.iter().map(render);
        let deliveries: Vec<(Sender<String>, String)> = pending
            .into_iter()
            .map(|p| match p {
                Pending::Op(tx) => (tx, rendered.next().unwrap_or_default()),
                Pending::Line(tx, line) => (tx, line),
            })
            .collect();
        send_acks(deliveries);
        Ok(())
    }

    /// Fail-stop drain: answer every still-queued job with the terminal
    /// `line` and commit nothing. Called after a storage failure has
    /// poisoned the journal — every pending client is owed an answer,
    /// and the only honest one is a refusal (no op here was journaled,
    /// so no durability is being claimed). Returns the number of jobs
    /// answered.
    pub fn fail_pending(&mut self, line: &str) -> u64 {
        let mut answered = 0;
        while let Some(job) = self.queue.pop() {
            answered += 1;
            let reply = match job.work {
                // Pre-rendered lines (protocol errors) are still
                // accurate; everything else gets the terminal ERR.
                Work::Line(l) => l,
                Work::Op(_) => line.to_string(),
            };
            let _ = job.reply.send(reply);
        }
        if answered > 0 {
            dnc_telemetry::counter("server.failed_pending", answered);
        }
        answered
    }
}

/// Deliver one committed chunk's reply lines — the single ack sink.
/// Every call site must be dominated by the journal commit (here:
/// `process_batch` fsyncs the chunk's ops before returning), which the
/// `dur-group-ack` deepcheck lint enforces statically.
fn send_acks(deliveries: Vec<(Sender<String>, String)>) {
    for (tx, line) in deliveries {
        // A vanished client (dropped receiver) is not an error — the
        // commit is already durable; only the courtesy reply is lost.
        let _ = tx.send(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::request::AdmitRequest;
    use dnc_net::{Network, Server, ServerId};
    use dnc_num::{int, rat};
    use std::sync::mpsc;

    fn base() -> Network {
        let mut net = Network::new();
        for i in 0..2 {
            net.add_server(Server::unit_fifo(format!("hop{i}")));
        }
        net
    }

    fn engine(queue_capacity: usize) -> ChurnEngine {
        ChurnEngine::new(
            base(),
            Vec::new(),
            EngineConfig {
                queue_capacity,
                ..EngineConfig::default()
            },
        )
        .unwrap()
    }

    fn admit(name: &str, deadline: i64) -> Request {
        Request::Admit(AdmitRequest {
            name: name.into(),
            route: vec![ServerId(0), ServerId(1)],
            buckets: vec![(int(1), rat(1, 32))],
            peak: None,
            priority: 0,
            deadline: int(deadline),
        })
    }

    fn render(r: &Response) -> String {
        match r {
            Response::Admitted { name, .. } => format!("OK {name}"),
            Response::Rejected { name, .. } => format!("NO {name}"),
            Response::Released { name } => format!("REL {name}"),
            Response::ReleaseFailed { name, .. } => format!("RELFAIL {name}"),
            Response::Queried { entries } => format!("Q {}", entries.len()),
            Response::Shed {
                name, retry_after, ..
            } => format!("SHED {name} retry {retry_after}"),
        }
    }

    #[test]
    fn replies_keep_per_connection_arrival_order() {
        let mut b = Batcher::new(engine(16), 16, 1, 3);
        let (tx, rx) = mpsc::channel();
        for job in [
            Job {
                work: Work::Op(admit("a", 50)),
                reply: tx.clone(),
            },
            Job {
                work: Work::Line("ERR bad line".into()),
                reply: tx.clone(),
            },
            Job {
                work: Work::Op(admit("b", 60)),
                reply: tx.clone(),
            },
            Job {
                work: Work::Op(Request::Release { name: "a".into() }),
                reply: tx.clone(),
            },
            Job {
                work: Work::Op(Request::Query { name: None }),
                reply: tx.clone(),
            },
        ] {
            b.enqueue(job, &render);
        }
        assert_eq!(b.backlog(), 5);
        let answered = b.flush(&render).unwrap();
        assert_eq!(answered, 5);
        drop(tx);
        let got: Vec<String> = rx.iter().collect();
        assert_eq!(got, ["OK a", "ERR bad line", "OK b", "REL a", "Q 1"]);
        // Three ops committed across two chunks of batch=3.
        assert_eq!(b.engine().stats().commits, 3);
        assert_eq!(
            b.engine().stats().group_commits,
            2,
            "one per non-empty chunk"
        );
        assert_eq!(b.engine().stats().batched_ops, 3);
    }

    #[test]
    fn overload_answers_sheds_immediately_with_retry_hint() {
        let mut b = Batcher::new(engine(16), 1, 7, 8);
        let (tx, rx) = mpsc::channel();
        b.enqueue(
            Job {
                work: Work::Op(admit("keep", 5)),
                reply: tx.clone(),
            },
            &render,
        );
        b.enqueue(
            Job {
                work: Work::Op(admit("late", 90)),
                reply: tx.clone(),
            },
            &render,
        );
        // The shed reply arrives before any flush.
        let first = rx.try_recv().unwrap();
        assert!(first.starts_with("SHED late retry "), "{first}");
        assert_eq!(b.sheds(), 1);
        b.flush(&render).unwrap();
        assert_eq!(rx.try_recv().unwrap(), "OK keep");
    }
}
