//! Write-ahead journal for the churn engine.
//!
//! Durability contract: every *committed* operation is appended to the
//! journal — length-prefixed, checksummed, and flushed — **before** the
//! engine acknowledges it. Recovery replays the journal against the same
//! base network and reconstructs the exact committed state; a torn or
//! corrupt tail (the bytes a crash left behind mid-append) is detected,
//! reported, and truncated rather than trusted.
//!
//! ## On-disk format
//!
//! ```text
//! +--------+  "DNCJ1\n" magic + version (6 bytes)
//! | header |
//! +--------+
//! | record |  u32 LE payload length
//! |        |  u32 LE CRC-32 (IEEE) of the payload bytes
//! |        |  payload: one or more UTF-8 operation lines (see `Op`)
//! +--------+
//! | ...    |
//! ```
//!
//! The payload is the text encoding produced by [`Op::encode`] /
//! consumed by [`Op::decode`] — human-greppable on purpose, and exact:
//! rationals round-trip through `Rat`'s `Display`/`FromStr`. The format
//! is dependency-free; the CRC-32 implementation lives in this module.
//!
//! A journal created by snapshot rotation additionally carries an
//! **epoch record** as its first record: the single line
//! `epoch <gen> <base_seq>`, marking that this file is the tail segment
//! starting after the `base_seq`-th committed operation, paired with
//! snapshot generation `gen` (see `snapshot.rs`). A journal without an
//! epoch record starts at generation 0, sequence 0 — the pre-rotation
//! format, which stays byte-identical.
//!
//! ## Storage faults and poisoning
//!
//! All write-side I/O goes through a [`StorageFs`](crate::fs::StorageFs)
//! backend (fault-injectable; see `fs.rs`). Once any append, flush, or
//! rotation step fails, the handle is **poisoned**: the in-memory write
//! offset can no longer be trusted to match the file, so every later
//! call fails with [`JournalError::Poisoned`] and the service must
//! fail-stop rather than acknowledge an operation of unknown
//! durability.
//!
//! ## Group commit
//!
//! [`Journal::append`] frames one op per record; the group-commit fast
//! path [`Journal::append_batch`] joins N encoded ops with `'\n'` into
//! a *single* record flushed by a *single* fsync, so a batch of
//! concurrent requests pays one disk round-trip instead of N. Replay
//! treats the record atomically: a torn or corrupt batch contributes
//! none of its ops, which is exactly the acknowledgment boundary — the
//! engine only acks a batch after its record is durable, so recovered
//! state is always a serial prefix of the acknowledged history.

use crate::fs::StorageHandle;
use dnc_net::ServerId;
use dnc_num::Rat;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Magic header: format name + version byte + newline (greppable).
const MAGIC: &[u8; 6] = b"DNCJ1\n";

/// Length of the magic header in bytes — exported so tools that slice
/// raw journal files (e.g. the churn harness's kill-point replayer)
/// stay in sync with the framing instead of hardcoding `6`.
pub const HEADER_LEN: usize = MAGIC.len();

/// Upper bound on one record's payload; anything larger is corruption,
/// not a request (routes and names are small).
const MAX_RECORD: u32 = 1 << 20;

/// An admission request as journaled: everything needed to rebuild the
/// flow deterministically against the base network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdmitOp {
    /// Engine-level connection name (no whitespace; unique while admitted).
    pub name: String,
    /// Route as server indices into the base network.
    pub route: Vec<ServerId>,
    /// Token buckets `(σ, ρ)`.
    pub buckets: Vec<(Rat, Rat)>,
    /// Optional peak-rate cap.
    pub peak: Option<Rat>,
    /// Priority for static-priority servers.
    pub priority: u8,
    /// The end-to-end deadline the admission certified.
    pub deadline: Rat,
}

/// One committed operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// A certified admission.
    Admit(AdmitOp),
    /// A certified release of a previously admitted connection.
    Release {
        /// The connection name as admitted.
        name: String,
    },
}

impl Op {
    /// Encode as one text line (no trailing newline). Stable format:
    ///
    /// `admit <name> deadline <d> prio <p> peak <r|-> route <i>... buckets <σ> <ρ> ...`
    /// `release <name>`
    pub fn encode(&self) -> String {
        match self {
            Op::Admit(a) => {
                use fmt::Write as _;
                let mut s = format!(
                    "admit {} deadline {} prio {} peak {}",
                    a.name,
                    a.deadline,
                    a.priority,
                    a.peak.map_or("-".to_string(), |p| p.to_string()),
                );
                let _ = write!(s, " route");
                for r in &a.route {
                    let _ = write!(s, " {}", r.0);
                }
                let _ = write!(s, " buckets");
                for (sigma, rho) in &a.buckets {
                    let _ = write!(s, " {sigma} {rho}");
                }
                s
            }
            Op::Release { name } => format!("release {name}"),
        }
    }

    /// Decode one line produced by [`Op::encode`].
    pub fn decode(line: &str) -> Result<Op, JournalError> {
        let bad = |m: &str| JournalError::BadRecord(format!("{m}: {line:?}"));
        let mut toks = line.split_whitespace();
        match toks.next() {
            Some("release") => {
                let name = toks.next().ok_or_else(|| bad("release without a name"))?;
                if toks.next().is_some() {
                    return Err(bad("trailing tokens after release"));
                }
                Ok(Op::Release {
                    name: name.to_string(),
                })
            }
            Some("admit") => {
                let name = toks
                    .next()
                    .ok_or_else(|| bad("admit without a name"))?
                    .to_string();
                expect_kw(&mut toks, "deadline", line)?;
                let deadline = parse_rat_tok(toks.next(), line)?;
                expect_kw(&mut toks, "prio", line)?;
                let priority: u8 = toks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| bad("invalid priority"))?;
                expect_kw(&mut toks, "peak", line)?;
                let peak = match toks.next() {
                    Some("-") => None,
                    t => Some(parse_rat_tok(t, line)?),
                };
                expect_kw(&mut toks, "route", line)?;
                let mut route = Vec::new();
                let mut cursor = toks.next();
                while let Some(t) = cursor {
                    if t == "buckets" {
                        break;
                    }
                    let idx: usize = t.parse().map_err(|_| bad("invalid route server index"))?;
                    route.push(ServerId(idx));
                    cursor = toks.next();
                }
                if cursor != Some("buckets") {
                    return Err(bad("expected `buckets`"));
                }
                if route.is_empty() {
                    return Err(bad("empty route"));
                }
                let mut buckets = Vec::new();
                while let Some(sig) = toks.next() {
                    let sigma = parse_rat_tok(Some(sig), line)?;
                    let rho = parse_rat_tok(toks.next(), line)?;
                    buckets.push((sigma, rho));
                }
                if buckets.is_empty() {
                    return Err(bad("admit without buckets"));
                }
                Ok(Op::Admit(AdmitOp {
                    name,
                    route,
                    buckets,
                    peak,
                    priority,
                    deadline,
                }))
            }
            _ => Err(bad("unknown operation")),
        }
    }
}

fn expect_kw(
    toks: &mut std::str::SplitWhitespace<'_>,
    kw: &str,
    line: &str,
) -> Result<(), JournalError> {
    match toks.next() {
        Some(t) if t == kw => Ok(()),
        _ => Err(JournalError::BadRecord(format!(
            "expected `{kw}`: {line:?}"
        ))),
    }
}

fn parse_rat_tok(tok: Option<&str>, line: &str) -> Result<Rat, JournalError> {
    tok.and_then(|t| t.parse::<Rat>().ok())
        .ok_or_else(|| JournalError::BadRecord(format!("invalid rational in {line:?}")))
}

/// Errors raised by journal I/O and decoding.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file exists but does not start with the journal magic — not a
    /// torn tail, a different file entirely; refusing to touch it.
    BadHeader,
    /// A fully framed record failed to decode (programmer error or
    /// interior corruption past the CRC — never silently skipped).
    BadRecord(String),
    /// An earlier append, flush, or rotation failed; the in-memory
    /// offset no longer matches the file, so the handle fails every
    /// call — the fail-stop half of the durability contract.
    Poisoned(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::BadHeader => {
                write!(f, "not a dnc journal (bad magic); refusing to truncate")
            }
            JournalError::BadRecord(m) => write!(f, "undecodable journal record: {m}"),
            JournalError::Poisoned(why) => write!(
                f,
                "journal poisoned by an earlier storage failure ({why}); fail-stop"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> JournalError {
        JournalError::Io(e)
    }
}

/// Why the valid prefix of a journal ended before the file did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TailDefect {
    /// Fewer bytes than one record frame remained.
    TornFrame,
    /// The length prefix exceeded [`MAX_RECORD`] or the remaining bytes.
    TornPayload,
    /// The checksum did not match the payload.
    ChecksumMismatch,
    /// The payload was not valid UTF-8 or not a decodable operation.
    Undecodable,
}

impl fmt::Display for TailDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TailDefect::TornFrame => write!(f, "torn record frame"),
            TailDefect::TornPayload => write!(f, "torn or oversized payload"),
            TailDefect::ChecksumMismatch => write!(f, "checksum mismatch"),
            TailDefect::Undecodable => write!(f, "undecodable payload"),
        }
    }
}

/// The result of replaying a journal file.
#[derive(Debug)]
pub struct Replay {
    /// Every operation in the valid prefix, in commit order.
    pub ops: Vec<Op>,
    /// Byte length of the valid prefix (header + intact records).
    pub valid_len: u64,
    /// The defect that ended the prefix, with the total file length —
    /// `None` when the whole file was intact.
    pub tail: Option<(TailDefect, u64)>,
    /// Snapshot generation from the epoch record (0 when absent).
    pub gen: u64,
    /// Committed operations preceding this file's first op — the
    /// sequence number the segment starts after (0 when absent).
    pub base_seq: u64,
}

impl Replay {
    /// The replay of a freshly created, empty journal.
    fn fresh() -> Replay {
        Replay {
            ops: Vec::new(),
            valid_len: HEADER_LEN as u64,
            tail: None,
            gen: 0,
            base_seq: 0,
        }
    }
}

/// Replay `path` without modifying it: decode the valid prefix, stop at
/// the first torn/corrupt record.
///
/// # Errors
/// I/O failures and a missing/incorrect magic header are errors; a
/// damaged *tail* is not (it is reported in [`Replay::tail`]).
pub fn replay(path: &Path) -> Result<Replay, JournalError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    replay_bytes(&bytes)
}

/// Replay an in-memory journal image (see [`replay`]).
fn replay_bytes(bytes: &[u8]) -> Result<Replay, JournalError> {
    if bytes.len() < MAGIC.len() || !bytes.starts_with(MAGIC) {
        return Err(JournalError::BadHeader);
    }
    let total = bytes.len() as u64;
    let mut ops = Vec::new();
    let mut offset = HEADER_LEN;
    let mut tail = None;
    let mut gen = 0u64;
    let mut base_seq = 0u64;
    loop {
        let rest = bytes.get(offset..).unwrap_or(&[]);
        if rest.is_empty() {
            break;
        }
        let defect = 'rec: {
            let (Some(len), Some(crc)) = (read_u32(rest, 0), read_u32(rest, 4)) else {
                break 'rec Some(TailDefect::TornFrame);
            };
            if len > MAX_RECORD {
                break 'rec Some(TailDefect::TornPayload);
            }
            let Some(payload) = rest.get(8..8 + len as usize) else {
                break 'rec Some(TailDefect::TornPayload);
            };
            if crc32(payload) != crc {
                break 'rec Some(TailDefect::ChecksumMismatch);
            }
            let Ok(text) = std::str::from_utf8(payload) else {
                break 'rec Some(TailDefect::Undecodable);
            };
            if offset == HEADER_LEN && text.starts_with("epoch") {
                // The rotation epoch may only ever be the first record;
                // anywhere else, `epoch` fails `Op::decode` below.
                let Some((g, s)) = parse_epoch(text) else {
                    break 'rec Some(TailDefect::Undecodable);
                };
                gen = g;
                base_seq = s;
            } else {
                // A record holds one op line, or a whole group-committed
                // batch of them. Decode all-or-nothing: one bad line
                // poisons the record, never a partial batch.
                let mut batch = Vec::new();
                for line in text.lines() {
                    let Ok(op) = Op::decode(line) else {
                        break 'rec Some(TailDefect::Undecodable);
                    };
                    batch.push(op);
                }
                if batch.is_empty() {
                    break 'rec Some(TailDefect::Undecodable);
                }
                ops.append(&mut batch);
            }
            offset += 8 + len as usize;
            None
        };
        if let Some(d) = defect {
            tail = Some((d, total));
            break;
        }
    }
    Ok(Replay {
        ops,
        valid_len: offset as u64,
        tail,
        gen,
        base_seq,
    })
}

pub(crate) fn read_u32(buf: &[u8], at: usize) -> Option<u32> {
    let b = buf.get(at..at + 4)?;
    let arr: [u8; 4] = b.try_into().ok()?;
    Some(u32::from_le_bytes(arr))
}

/// The epoch record payload for a rotated journal segment.
fn epoch_payload(gen: u64, base_seq: u64) -> String {
    format!("epoch {gen} {base_seq}")
}

/// Parse `epoch <gen> <base_seq>` — exactly one line, exactly three
/// tokens.
fn parse_epoch(text: &str) -> Option<(u64, u64)> {
    if text.lines().count() != 1 {
        return None;
    }
    let mut toks = text.split_whitespace();
    if toks.next() != Some("epoch") {
        return None;
    }
    let gen = toks.next()?.parse().ok()?;
    let base_seq = toks.next()?.parse().ok()?;
    if toks.next().is_some() {
        return None;
    }
    Some((gen, base_seq))
}

/// Frame one record: u32 LE length, u32 LE CRC-32, payload bytes.
pub(crate) fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// `path`'s sibling named `<file_name>.<suffix>` in the same directory.
pub(crate) fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".{suffix}"));
    path.with_file_name(name)
}

/// The directory whose entry table must be flushed for `path`'s
/// creation/rename/truncation to survive a crash.
pub(crate) fn parent_dir(path: &Path) -> &Path {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    }
}

/// An append-only journal handle positioned at the end of its valid
/// prefix.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    fs: StorageHandle,
    poisoned: Option<String>,
}

impl Journal {
    /// Create a fresh journal at `path` (truncating any existing file)
    /// and write the header. Uses the production storage backend.
    pub fn create(path: &Path) -> Result<Journal, JournalError> {
        Journal::create_with(path, crate::fs::real())
    }

    /// [`Journal::create`] on an explicit storage backend.
    pub fn create_with(path: &Path, fs: StorageHandle) -> Result<Journal, JournalError> {
        Journal::create_at(path, fs, 0, 0)
    }

    /// Create a journal whose first record is the epoch
    /// `epoch <gen> <base_seq>` — the tail segment started by a
    /// snapshot rotation. Generation 0 / sequence 0 writes the bare
    /// header (the pre-rotation format).
    pub fn create_at(
        path: &Path,
        fs: StorageHandle,
        gen: u64,
        base_seq: u64,
    ) -> Result<Journal, JournalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut buf = MAGIC.to_vec();
        if gen > 0 || base_seq > 0 {
            buf.extend_from_slice(&frame_record(epoch_payload(gen, base_seq).as_bytes()));
        }
        fs.write(&mut file, &buf)?;
        fs.sync_data(&file)?;
        // The file's *data* being durable is not enough: until the
        // directory entry is flushed, a crash can forget the file ever
        // existed and recovery would silently start from nothing.
        fs.sync_dir(parent_dir(path))?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
            fs,
            poisoned: None,
        })
    }

    /// Open an existing journal (or create one): replays the valid
    /// prefix, **truncates** any torn/corrupt tail, and positions the
    /// handle for appends. Returns the handle and the replay. Uses the
    /// production storage backend.
    pub fn resume(path: &Path) -> Result<(Journal, Replay), JournalError> {
        Journal::resume_with(path, crate::fs::real())
    }

    /// [`Journal::resume`] on an explicit storage backend.
    pub fn resume_with(path: &Path, fs: StorageHandle) -> Result<(Journal, Replay), JournalError> {
        if !path.exists() {
            let journal = Journal::create_with(path, fs)?;
            return Ok((journal, Replay::fresh()));
        }
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        if bytes.len() < MAGIC.len() && MAGIC.starts_with(&bytes) {
            // A crash mid-creation: the file holds a proper prefix of
            // the magic (possibly nothing). No record — in particular no
            // acknowledged op — can precede a complete header, so
            // recreating in place is safe. A *non-prefix* short file is
            // still refused as not-a-journal below.
            let journal = Journal::create_with(path, fs)?;
            return Ok((journal, Replay::fresh()));
        }
        let replay = replay_bytes(&bytes)?;
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut journal = Journal {
            file,
            path: path.to_path_buf(),
            fs,
            poisoned: None,
        };
        if replay.tail.is_some() {
            // The damaged tail is dead weight: a future append must not
            // leave it dangling past fresh records. Metadata (the new
            // length) must survive a crash too, or a re-crash during
            // recovery could resurrect the torn tail.
            journal.fs.set_len(&journal.file, replay.valid_len)?;
            journal.fs.sync_data(&journal.file)?;
            journal.fs.sync_dir(parent_dir(path))?;
        }
        journal.file.seek(SeekFrom::Start(replay.valid_len))?;
        Ok((journal, replay))
    }

    /// Append one committed operation and flush it to stable storage.
    /// Returns only after the record is durable.
    pub fn append(&mut self, op: &Op) -> Result<(), JournalError> {
        self.append_payload(&op.encode())
    }

    /// Append a whole batch of committed operations as **one** framed
    /// record flushed by **one** fsync — the group-commit fast path.
    ///
    /// The payload is the newline-joined [`Op::encode`] text of every
    /// op ([`Op::encode`] never emits a newline), so the batch lands in
    /// the journal in slice order — the order the engine certified the
    /// ops — and replays atomically: a torn batch contributes none of
    /// its ops. An empty batch writes nothing.
    pub fn append_batch(&mut self, ops: &[Op]) -> Result<(), JournalError> {
        if ops.is_empty() {
            return Ok(());
        }
        let payload = ops.iter().map(Op::encode).collect::<Vec<_>>().join("\n");
        self.append_payload(&payload)
    }

    /// Frame `payload`, write it, and fsync — the single durability
    /// point every acknowledgment path funnels through. Any storage
    /// failure poisons the handle: the write offset may be out of sync
    /// with the file, so no further append can be trusted.
    fn append_payload(&mut self, payload: &str) -> Result<(), JournalError> {
        if let Some(why) = &self.poisoned {
            return Err(JournalError::Poisoned(why.clone()));
        }
        let bytes = payload.as_bytes();
        let len = u32::try_from(bytes.len())
            .map_err(|_| JournalError::BadRecord("operation payload exceeds u32 length".into()))?;
        if len > MAX_RECORD {
            return Err(JournalError::BadRecord(
                "operation payload exceeds the record cap".into(),
            ));
        }
        let frame = frame_record(bytes);
        let flushed = self
            .fs
            .write(&mut self.file, &frame)
            .and_then(|()| self.fs.sync_data(&self.file));
        match flushed {
            Ok(()) => Ok(()),
            Err(e) => {
                self.poisoned = Some(e.to_string());
                Err(JournalError::Io(e))
            }
        }
    }

    /// Rotate this journal under a just-published snapshot at
    /// (`gen`, `base_seq`): the current file moves aside to
    /// `<path>.prev` and a fresh segment whose epoch record points past
    /// the snapshot takes its place — built complete at `<path>.new`,
    /// flushed, then atomically renamed in, so a crash at any step
    /// leaves either the old segment or a fully formed new one.
    ///
    /// Any failure poisons the handle (the file layout is in an
    /// intermediate state only recovery may interpret).
    pub fn rotate(&mut self, gen: u64, base_seq: u64) -> Result<(), JournalError> {
        if let Some(why) = &self.poisoned {
            return Err(JournalError::Poisoned(why.clone()));
        }
        match self.rotate_inner(gen, base_seq) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.poisoned = Some(e.to_string());
                Err(e)
            }
        }
    }

    fn rotate_inner(&mut self, gen: u64, base_seq: u64) -> Result<(), JournalError> {
        let dir = parent_dir(&self.path).to_path_buf();
        let prev = sibling(&self.path, "prev");
        self.fs.rename(&self.path, &prev)?;
        self.fs.sync_dir(&dir)?;
        let staging = sibling(&self.path, "new");
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&staging)?;
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&frame_record(epoch_payload(gen, base_seq).as_bytes()));
        self.fs.write(&mut file, &buf)?;
        self.fs.sync_data(&file)?;
        self.fs.rename(&staging, &self.path)?;
        self.fs.sync_dir(&dir)?;
        // The handle follows the inode through the rename; its cursor
        // already sits at the end of the epoch record.
        self.file = file;
        Ok(())
    }

    /// Poison the handle from outside (e.g. a snapshot publish failed
    /// mid-protocol): every later call returns
    /// [`JournalError::Poisoned`].
    pub fn poison(&mut self, why: &str) {
        if self.poisoned.is_none() {
            self.poisoned = Some(why.to_string());
        }
    }

    /// Why the handle is poisoned, if it is.
    pub fn poisoned(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// The storage backend this journal writes through.
    pub fn storage(&self) -> StorageHandle {
        self.fs.clone()
    }

    /// The path this journal writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) — the
/// classic table-driven implementation, dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = u32::MAX;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        let entry = TABLE.get(idx).copied().unwrap_or(0);
        crc = (crc >> 8) ^ entry;
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        // audit: allow(index, const-context loop with i < 256 over a [u32; 256]; slice::get is unusable for const assignment)
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{FaultFs, FaultKind};
    use dnc_num::{int, rat};
    use std::sync::Arc;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dnc_journal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_admit(name: &str) -> Op {
        Op::Admit(AdmitOp {
            name: name.into(),
            route: vec![ServerId(0), ServerId(2)],
            buckets: vec![(int(1), rat(1, 8)), (int(4), rat(1, 16))],
            peak: Some(int(1)),
            priority: 3,
            deadline: rat(25, 2),
        })
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn ops_round_trip_through_text() {
        for op in [
            sample_admit("video-7"),
            Op::Admit(AdmitOp {
                name: "x".into(),
                route: vec![ServerId(5)],
                buckets: vec![(int(2), rat(3, 7))],
                peak: None,
                priority: 0,
                deadline: int(100),
            }),
            Op::Release {
                name: "video-7".into(),
            },
        ] {
            let text = op.encode();
            assert_eq!(Op::decode(&text).unwrap(), op, "{text}");
        }
    }

    #[test]
    fn decode_rejects_malformed_lines() {
        for bad in [
            "",
            "frobnicate x",
            "release",
            "epoch 1 2", // the epoch record is framing metadata, not an op
            "admit f deadline 3 prio 0 peak - route buckets 1 1/8", // empty route
            "admit f deadline 3 prio 0 peak - route 0 buckets", // no buckets
            "admit f deadline 3 prio 0 peak - route 0 buckets 1", // odd bucket
            "admit f deadline x prio 0 peak - route 0 buckets 1 1", // bad rat
        ] {
            assert!(Op::decode(bad).is_err(), "{bad:?} must not decode");
        }
    }

    #[test]
    fn append_and_replay_round_trip() {
        let path = tmp("round_trip.wal");
        let ops = vec![
            sample_admit("a"),
            sample_admit("b"),
            Op::Release { name: "a".into() },
        ];
        let mut j = Journal::create(&path).unwrap();
        for op in &ops {
            j.append(op).unwrap();
        }
        drop(j);
        let r = replay(&path).unwrap();
        assert_eq!(r.ops, ops);
        assert!(r.tail.is_none());
        assert_eq!((r.gen, r.base_seq), (0, 0));
    }

    #[test]
    fn torn_tail_is_detected_and_truncated_at_every_offset() {
        let path = tmp("torn.wal");
        let ops = vec![sample_admit("a"), Op::Release { name: "a".into() }];
        let mut j = Journal::create(&path).unwrap();
        for op in &ops {
            j.append(op).unwrap();
        }
        drop(j);
        let full = std::fs::read(&path).unwrap();
        // Truncating anywhere must recover a (possibly empty) prefix of
        // the committed ops, never garbage.
        for cut in MAGIC.len()..full.len() {
            let torn = tmp("torn_cut.wal");
            std::fs::write(&torn, &full[..cut]).unwrap();
            let (journal, r) = Journal::resume(&torn).unwrap();
            assert!(r.ops.len() <= ops.len());
            assert_eq!(r.ops.as_slice(), &ops[..r.ops.len()], "cut at {cut}");
            if cut < full.len() {
                assert!(
                    r.tail.is_some() || r.valid_len == cut as u64,
                    "cut at {cut} must either flag a defect or end exactly on a boundary"
                );
            }
            // After truncation the file is the valid prefix, and appends
            // resume cleanly.
            drop(journal);
            assert_eq!(std::fs::metadata(&torn).unwrap().len(), r.valid_len);
            let (mut journal, _) = Journal::resume(&torn).unwrap();
            journal.append(&sample_admit("post-crash")).unwrap();
            let r2 = replay(&torn).unwrap();
            assert!(r2.tail.is_none());
            assert_eq!(r2.ops.last().unwrap(), &sample_admit("post-crash"));
        }
    }

    #[test]
    fn batch_append_replays_in_order_alongside_single_records() {
        let path = tmp("batch_mix.wal");
        let mut j = Journal::create(&path).unwrap();
        j.append(&sample_admit("solo")).unwrap();
        let batch = vec![
            sample_admit("a"),
            sample_admit("b"),
            Op::Release { name: "a".into() },
        ];
        j.append_batch(&batch).unwrap();
        j.append(&Op::Release { name: "b".into() }).unwrap();
        drop(j);
        let r = replay(&path).unwrap();
        let mut want = vec![sample_admit("solo")];
        want.extend(batch);
        want.push(Op::Release { name: "b".into() });
        assert_eq!(r.ops, want);
        assert!(r.tail.is_none());
    }

    #[test]
    fn empty_batch_writes_nothing() {
        let path = tmp("batch_empty.wal");
        let mut j = Journal::create(&path).unwrap();
        j.append_batch(&[]).unwrap();
        drop(j);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            MAGIC.len() as u64,
            "an empty batch must not frame an empty record"
        );
        let r = replay(&path).unwrap();
        assert!(r.ops.is_empty());
        assert!(r.tail.is_none());
    }

    #[test]
    fn torn_batch_is_dropped_wholesale() {
        let path = tmp("batch_torn.wal");
        let mut j = Journal::create(&path).unwrap();
        j.append(&sample_admit("committed")).unwrap();
        let intact_len = std::fs::metadata(&path).unwrap().len();
        j.append_batch(&[sample_admit("x"), sample_admit("y"), sample_admit("z")])
            .unwrap();
        drop(j);
        let full = std::fs::read(&path).unwrap();
        // Cut anywhere inside the batch record: either the whole batch
        // survives (no cut) or none of it does — never x without z.
        for cut in intact_len as usize..full.len() {
            let torn = tmp("batch_torn_cut.wal");
            std::fs::write(&torn, &full[..cut]).unwrap();
            let r = replay(&torn).unwrap();
            assert_eq!(
                r.ops,
                vec![sample_admit("committed")],
                "cut at {cut} leaked a partial batch"
            );
            assert!(
                r.tail.is_some() || cut as u64 == intact_len,
                "cut at {cut} must flag a defect"
            );
            assert_eq!(r.valid_len, intact_len);
        }
    }

    #[test]
    fn batch_with_one_bad_line_is_atomic_poison() {
        let path = tmp("batch_poison.wal");
        let mut j = Journal::create(&path).unwrap();
        j.append(&sample_admit("good")).unwrap();
        drop(j);
        // Hand-frame a batch whose second line does not decode: the CRC
        // is valid, so only the all-or-nothing decode rule rejects it.
        let payload = b"release good\nfrobnicate nonsense";
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        std::fs::write(&path, &bytes).unwrap();
        let r = replay(&path).unwrap();
        assert_eq!(r.ops, vec![sample_admit("good")]);
        assert_eq!(
            r.tail.as_ref().map(|(d, _)| d.clone()),
            Some(TailDefect::Undecodable)
        );
    }

    #[test]
    fn empty_payload_record_is_a_defect() {
        let path = tmp("empty_record.wal");
        let mut j = Journal::create(&path).unwrap();
        j.append(&sample_admit("a")).unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&crc32(b"").to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let r = replay(&path).unwrap();
        assert_eq!(r.ops, vec![sample_admit("a")]);
        assert_eq!(
            r.tail.as_ref().map(|(d, _)| d.clone()),
            Some(TailDefect::Undecodable)
        );
    }

    #[test]
    fn corrupt_byte_in_tail_record_is_dropped() {
        let path = tmp("corrupt.wal");
        let mut j = Journal::create(&path).unwrap();
        j.append(&sample_admit("a")).unwrap();
        j.append(&sample_admit("b")).unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 3; // inside record b's payload
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let r = replay(&path).unwrap();
        assert_eq!(r.ops, vec![sample_admit("a")]);
        assert_eq!(
            r.tail.as_ref().map(|(d, _)| d.clone()),
            Some(TailDefect::ChecksumMismatch)
        );
    }

    #[test]
    fn non_journal_file_is_refused() {
        let path = tmp("not_a_journal.txt");
        std::fs::write(&path, b"hello world, definitely not a journal").unwrap();
        assert!(matches!(replay(&path), Err(JournalError::BadHeader)));
        assert!(matches!(
            Journal::resume(&path),
            Err(JournalError::BadHeader)
        ));
        // The impostor file is untouched.
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"hello world, definitely not a journal"
        );
        // A short file that is NOT a magic prefix is refused too.
        let short = tmp("short_impostor.txt");
        std::fs::write(&short, b"DNX").unwrap();
        assert!(matches!(
            Journal::resume(&short),
            Err(JournalError::BadHeader)
        ));
    }

    #[test]
    fn oversized_length_prefix_is_a_torn_payload() {
        let path = tmp("oversized.wal");
        let mut j = Journal::create(&path).unwrap();
        j.append(&sample_admit("a")).unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        // Append a frame claiming a huge payload.
        bytes.extend_from_slice(&(MAX_RECORD + 1).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let r = replay(&path).unwrap();
        assert_eq!(r.ops.len(), 1);
        assert_eq!(
            r.tail.as_ref().map(|(d, _)| d.clone()),
            Some(TailDefect::TornPayload)
        );
    }

    #[test]
    fn crash_during_creation_resumes_as_a_fresh_journal() {
        // Every proper prefix of the magic — including the empty file a
        // crash-before-first-write leaves — recreates in place.
        for cut in 0..MAGIC.len() {
            let path = tmp("torn_create.wal");
            std::fs::write(&path, &MAGIC[..cut]).unwrap();
            let (mut j, r) = Journal::resume(&path).unwrap();
            assert!(r.ops.is_empty(), "cut at {cut}");
            assert_eq!(r.valid_len, MAGIC.len() as u64);
            j.append(&sample_admit("a")).unwrap();
            drop(j);
            assert_eq!(replay(&path).unwrap().ops.len(), 1);
        }
    }

    #[test]
    fn failed_append_poisons_the_handle() {
        // Regression: a short write used to leave the in-memory offset
        // out of sync with the file while later appends kept going.
        // Creation consumes sites 0..3 (write, sync_data, sync_dir);
        // site 3 is the first append's write.
        let path = tmp("poisoned.wal");
        let fs = Arc::new(FaultFs::new(3, FaultKind::ShortWrite));
        let mut j = Journal::create_with(&path, fs).unwrap();
        let first = j.append(&sample_admit("a"));
        assert!(matches!(first, Err(JournalError::Io(_))), "{first:?}");
        assert!(j.poisoned().is_some());
        // Every subsequent call fails without touching the file.
        for _ in 0..2 {
            let again = j.append(&sample_admit("b"));
            assert!(matches!(again, Err(JournalError::Poisoned(_))), "{again:?}");
        }
        let batch = j.append_batch(&[sample_admit("c")]);
        assert!(matches!(batch, Err(JournalError::Poisoned(_))));
        assert!(matches!(j.rotate(1, 1), Err(JournalError::Poisoned(_))));
        drop(j);
        // The torn record is detected and truncated by recovery.
        let (_, r) = Journal::resume(&path).unwrap();
        assert!(r.ops.is_empty());
        assert_eq!(r.valid_len, MAGIC.len() as u64);
    }

    #[test]
    fn failed_fsync_poisons_the_handle_too() {
        // Site 4 is the first append's sync_data: the bytes hit the
        // file but durability is unknown — still fail-stop.
        let path = tmp("poisoned_sync.wal");
        let fs = Arc::new(FaultFs::new(4, FaultKind::Eio));
        let mut j = Journal::create_with(&path, fs).unwrap();
        assert!(matches!(
            j.append(&sample_admit("a")),
            Err(JournalError::Io(_))
        ));
        assert!(matches!(
            j.append(&sample_admit("b")),
            Err(JournalError::Poisoned(_))
        ));
    }

    #[test]
    fn epoch_record_round_trips_and_survives_appends() {
        let path = tmp("epoch.wal");
        let mut j = Journal::create_at(&path, crate::fs::real(), 3, 17).unwrap();
        j.append(&sample_admit("a")).unwrap();
        drop(j);
        let r = replay(&path).unwrap();
        assert_eq!((r.gen, r.base_seq), (3, 17));
        assert_eq!(r.ops.len(), 1);
        assert!(r.tail.is_none());
        // Resume lands after the epoch and keeps appending.
        let (mut j, r) = Journal::resume(&path).unwrap();
        assert_eq!((r.gen, r.base_seq), (3, 17));
        j.append(&Op::Release { name: "a".into() }).unwrap();
        drop(j);
        assert_eq!(replay(&path).unwrap().ops.len(), 2);
    }

    #[test]
    fn rotation_moves_the_segment_aside_and_starts_a_fresh_epoch() {
        let path = tmp("rotate.wal");
        let mut j = Journal::create(&path).unwrap();
        j.append(&sample_admit("a")).unwrap();
        j.append(&sample_admit("b")).unwrap();
        j.rotate(1, 2).unwrap();
        j.append(&Op::Release { name: "a".into() }).unwrap();
        drop(j);
        let prev = replay(&sibling(&path, "prev")).unwrap();
        assert_eq!(prev.ops.len(), 2);
        assert_eq!((prev.gen, prev.base_seq), (0, 0));
        let active = replay(&path).unwrap();
        assert_eq!((active.gen, active.base_seq), (1, 2));
        assert_eq!(active.ops, vec![Op::Release { name: "a".into() }]);
    }

    #[test]
    fn epoch_after_first_record_is_a_defect() {
        let path = tmp("late_epoch.wal");
        let mut j = Journal::create(&path).unwrap();
        j.append(&sample_admit("a")).unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&frame_record(b"epoch 1 1"));
        std::fs::write(&path, &bytes).unwrap();
        let r = replay(&path).unwrap();
        assert_eq!(r.ops.len(), 1);
        assert_eq!(
            r.tail.as_ref().map(|(d, _)| d.clone()),
            Some(TailDefect::Undecodable)
        );
    }
}
