//! `cargo xtask kernel-bench` — curve-kernel on/off divergence smoke.
//!
//! Runs the pinned profile harness twice: once with the curve kernel
//! (hash-consed interning, shape fast paths, memo tables — DESIGN §18)
//! enabled, once with every fast path disabled so all operations take
//! the always-general algebra. The two runs must produce **Rat-exact**
//! identical bounds for every algorithm; any divergence is a soundness
//! bug in a fast path or memo and fails the task with
//! [`exit::VIOLATION`]. The wall-time ratio is reported for context
//! but never gated here (that's `cargo xtask bench --gate`'s job).
//!
//! The kernel-off pass runs first: the interner's arena and the global
//! memo tables warm monotonically per process, so running the general
//! path first guarantees its results cannot have been produced by a
//! kernel code path.

use dnc_bench::exit;
use dnc_bench::profile::{run_profile, ProfileConfig, ProfileReport};
use std::process::ExitCode;

const USAGE: &str = "usage: cargo xtask kernel-bench [--quick] [--n SERVERS]";

fn as_exit(code: i32) -> ExitCode {
    ExitCode::from(code as u8)
}

fn bound_text(report: &ProfileReport, label: &str) -> String {
    report
        .algos
        .iter()
        .find(|a| a.label == label)
        .and_then(|a| a.bound.as_ref())
        .map(|b| b.to_string())
        .unwrap_or_else(|| "-".to_string())
}

/// Parse flags and run the on/off comparison.
pub fn kernel_bench_cmd(flags: &[String]) -> ExitCode {
    let mut cfg = ProfileConfig::default();
    let mut i = 0;
    while i < flags.len() {
        match flags[i].as_str() {
            "--quick" => {
                cfg.n = 4;
                cfg.repeats = 1;
            }
            "--n" => {
                i += 1;
                match flags.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => cfg.n = n,
                    None => {
                        eprintln!("xtask kernel-bench: --n needs a number\n{USAGE}");
                        return as_exit(exit::USAGE);
                    }
                }
            }
            other => {
                eprintln!("xtask kernel-bench: unknown flag `{other}`\n{USAGE}");
                return as_exit(exit::USAGE);
            }
        }
        i += 1;
    }

    dnc_curves::intern::set_kernel_enabled(false);
    let off = run_profile(&cfg);
    dnc_curves::intern::set_kernel_enabled(true);
    let on = run_profile(&cfg);

    println!(
        "kernel-bench: n={} U={:.2} repeats={}",
        cfg.n,
        cfg.u.to_f64(),
        cfg.repeats
    );
    println!(
        "{:<16} {:>14} {:>14} {:>10} {:>10} {:>8}",
        "algorithm", "bound(off)", "bound(on)", "off_us", "on_us", "ratio"
    );
    let mut divergences = 0usize;
    for a in &off.algos {
        let off_bound = bound_text(&off, a.label);
        let on_bound = bound_text(&on, a.label);
        let on_wall = on
            .algos
            .iter()
            .find(|b| b.label == a.label)
            .map(|b| b.wall_us)
            .unwrap_or(0);
        let ratio = if on_wall > 0 {
            a.wall_us as f64 / on_wall as f64
        } else {
            0.0
        };
        let diverged = off_bound != on_bound;
        if diverged {
            divergences += 1;
        }
        println!(
            "{:<16} {:>14} {:>14} {:>10} {:>10} {:>7.2}x{}",
            a.label,
            off_bound,
            on_bound,
            a.wall_us,
            on_wall,
            ratio,
            if diverged { "  DIVERGED" } else { "" }
        );
    }
    if on.algos.len() != off.algos.len() {
        eprintln!(
            "kernel-bench: algorithm sets differ ({} on vs {} off)",
            on.algos.len(),
            off.algos.len()
        );
        divergences += 1;
    }
    if divergences > 0 {
        eprintln!("kernel-bench: {divergences} Rat-exact divergence(s) between kernel on and off");
        as_exit(exit::VIOLATION)
    } else {
        println!("kernel on and off produce Rat-exact identical bounds");
        as_exit(exit::OK)
    }
}
