//! Deterministic finding output: human-readable text and machine-readable
//! JSON (hand-rolled — the audit tool itself must build with zero external
//! dependencies).

use std::collections::BTreeMap;

/// One audit finding at a specific source location.
#[derive(Debug, Clone)]
pub struct Finding {
    pub lint: String,
    pub file: String,
    pub line: usize,
    pub message: String,
    pub snippet: String,
}

/// A used escape hatch, listed in the report so reviews (and the checked-in
/// baseline) see every suppression with its justification.
#[derive(Debug, Clone)]
pub struct AllowRecord {
    pub lint: String,
    pub file: String,
    pub line: usize,
    pub reason: String,
}

/// Sort findings for stable output: by file, then line, then lint.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.lint.as_str()).cmp(&(b.file.as_str(), b.line, b.lint.as_str()))
    });
}

/// Sort allow records the same way.
pub fn sort_allows(allows: &mut [AllowRecord]) {
    allows.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.lint.as_str()).cmp(&(b.file.as_str(), b.line, b.lint.as_str()))
    });
}

/// Human-readable report to stdout. Returns the finding count.
pub fn print_text(
    task: &str,
    findings: &[Finding],
    allows: &[AllowRecord],
    files_scanned: usize,
) -> usize {
    for f in findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.lint, f.message);
        if !f.snippet.is_empty() {
            println!("    {}", f.snippet.trim());
        }
    }
    let mut per_lint: BTreeMap<&str, usize> = BTreeMap::new();
    for f in findings {
        *per_lint.entry(&f.lint).or_default() += 1;
    }
    if findings.is_empty() {
        println!(
            "{task}: clean — {} files scanned, 0 findings, {} allow(s) in effect",
            files_scanned,
            allows.len()
        );
    } else {
        let breakdown: Vec<String> = per_lint.iter().map(|(l, n)| format!("{l}: {n}")).collect();
        println!(
            "{task}: {} finding(s) in {} files scanned ({}); {} allow(s) in effect",
            findings.len(),
            files_scanned,
            breakdown.join(", "),
            allows.len()
        );
    }
    findings.len()
}

/// Escape a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Machine-readable report as a JSON string. The layout is stable and
/// deterministic so `results/audit-baseline.json` diffs cleanly.
pub fn to_json(findings: &[Finding], allows: &[AllowRecord], files_scanned: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"finding_count\": {},\n", findings.len()));

    let mut per_lint: BTreeMap<&str, usize> = BTreeMap::new();
    for f in findings {
        *per_lint.entry(&f.lint).or_default() += 1;
    }
    out.push_str("  \"findings_by_lint\": {");
    let entries: Vec<String> = per_lint
        .iter()
        .map(|(l, n)| format!("\"{}\": {n}", json_escape(l)))
        .collect();
    out.push_str(&entries.join(", "));
    out.push_str("},\n");

    out.push_str("  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"snippet\": \"{}\"}}{}\n",
            json_escape(&f.lint),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message),
            json_escape(f.snippet.trim()),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");

    out.push_str(&format!("  \"allow_count\": {},\n", allows.len()));
    out.push_str("  \"allows\": [\n");
    for (i, a) in allows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}{}\n",
            json_escape(&a.lint),
            json_escape(&a.file),
            a.line,
            json_escape(&a.reason),
            if i + 1 < allows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("tab\there"), "tab\\there");
    }

    #[test]
    fn json_shape_is_valid_enough() {
        let findings = vec![Finding {
            lint: "unwrap".into(),
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            message: "msg with \"quotes\"".into(),
            snippet: "x.unwrap()".into(),
        }];
        let allows = vec![AllowRecord {
            lint: "float".into(),
            file: "crates/y/src/lib.rs".into(),
            line: 3,
            reason: "plotting".into(),
        }];
        let j = to_json(&findings, &allows, 42);
        assert!(j.contains("\"files_scanned\": 42"));
        assert!(j.contains("\"finding_count\": 1"));
        assert!(j.contains("\\\"quotes\\\""));
        assert!(j.contains("\"findings_by_lint\": {\"unwrap\": 1}"));
        // Balanced braces/brackets (cheap well-formedness proxy).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn sorting_is_stable_and_total() {
        let mut f = vec![
            Finding {
                lint: "b".into(),
                file: "z.rs".into(),
                line: 1,
                message: String::new(),
                snippet: String::new(),
            },
            Finding {
                lint: "a".into(),
                file: "a.rs".into(),
                line: 9,
                message: String::new(),
                snippet: String::new(),
            },
            Finding {
                lint: "a".into(),
                file: "a.rs".into(),
                line: 2,
                message: String::new(),
                snippet: String::new(),
            },
        ];
        sort_findings(&mut f);
        assert_eq!(f[0].line, 2);
        assert_eq!(f[2].file, "z.rs");
    }
}
