//! The `deepcheck` lint families: cross-file determinism, concurrency,
//! durability, and contract checks built on the [`SymbolIndex`].
//!
//! Where `audit` enforces *local* invariants (no panics, no floats),
//! `deepcheck` enforces the repo's *global* promises:
//!
//! | family        | lints                                   | invariant protected                         |
//! |---------------|-----------------------------------------|---------------------------------------------|
//! | determinism   | `det-hash-iter`, `det-wall-clock`       | bit-identical reports across worker counts  |
//! | concurrency   | `conc-thread-local`, `conc-panic-payload` | `fan_out` jobs stay thread-local-clean    |
//! | durability    | `dur-fsync`, `dur-framing`, `dur-group-ack`, `dur-atomic-publish` | fsync-before-ack; single-sourced framing; commit-dominated ack sink; crash-atomic snapshot publish |
//! | contract      | `contract-exit`, `contract-span`, `contract-curve-eq` | unified exit codes; RAII spans held open; canonical curve equality |
//!
//! All passes share the `// audit: allow(<lint>, <reason>)` escape hatch,
//! but deepcheck lints must be named explicitly — blanket `allow(all)`
//! does not apply (see [`ScannedFile::allowed_named`]). Soundness limits
//! of the name-based reachability are documented in DESIGN §14.

use crate::index::{self, SymbolIndex};
use crate::lexer::{Token, TokenKind};
use crate::report::Finding;
use crate::scan::ScannedFile;
use std::collections::BTreeSet;
use std::ops::Range;

/// Every lint name deepcheck owns (for allow-hygiene bookkeeping).
pub const DEEPCHECK_LINTS: &[&str] = &[
    "det-hash-iter",
    "det-wall-clock",
    "conc-thread-local",
    "conc-panic-payload",
    "dur-fsync",
    "dur-framing",
    "dur-group-ack",
    "dur-atomic-publish",
    "contract-exit",
    "contract-span",
    "contract-curve-eq",
];

/// Files whose functions are *emit roots*: anything reachable from them
/// ends up in a report, an export, a chart, or the durable journal, so
/// iteration order and wall-clock reads become output.
const EMIT_ROOT_FILES: &[&str] = &[
    "/report.rs",
    "/export.rs",
    "/journal.rs",
    "/chart.rs",
    "/snapshot.rs",
    "/engine.rs",
    "/serve.rs",
    "/json.rs",
];

/// Function names that are emit roots wherever they are defined.
const EMIT_ROOT_FNS: &[&str] = &["encode", "to_json"];

/// Hash-collection methods whose results depend on hash order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Wall-clock reads are this module's entire purpose (span timing); its
/// outputs are durations, not analysis results.
const WALL_CLOCK_EXEMPT: &[&str] = &["crates/telemetry/src/record.rs"];

/// Files allowed to touch the `limits` thread-local machinery: the
/// snapshot/reinstall protocol itself, the stack it manages, and the
/// telemetry sink (whose thread-local buffer is per-thread by design).
const THREAD_LOCAL_HOME: &[&str] = &[
    "crates/core/src/par.rs",
    "crates/curves/src/limits.rs",
    "crates/telemetry/src/record.rs",
];

/// The durability lints only apply to the service crate's sources.
const DURABILITY_SRC: &str = "crates/service/";

/// The one file allowed to define the journal framing constants.
const FRAMING_HOME: &str = "crates/service/src/journal.rs";

/// Functions that deliver acknowledgement lines to clients. Every call
/// site must be *dominated* by a journal commit — an earlier call in
/// the same body that (transitively) reaches one of [`COMMIT_CALLS`].
const ACK_SINKS: &[&str] = &["send_acks"];

/// Calls that make queued operations durable: the WAL appends (which
/// fsync internally) and the raw fsync primitives themselves.
const COMMIT_CALLS: &[&str] = &["append", "append_batch", "sync_data", "sync_all"];

/// The deepcheck tool itself mentions the framing needles (below) and
/// must not flag its own configuration.
const SELF_SRC: &str = "crates/xtask/";

/// The journal magic marker (as a substring of a string/byte literal).
const MAGIC_NEEDLE: &str = "DNCJ1";

/// The CRC-32 reflected polynomial, normalized (lowercase, no `_`).
const CRC_NEEDLE: &str = "0xedb88320";

/// The one file allowed to define exit-code integer constants.
const EXIT_TABLE: &str = "crates/bench/src/exit.rs";

/// Run every deepcheck pass over `files` and return the findings
/// (unsorted; the caller sorts alongside allow records).
pub fn run(files: &[ScannedFile]) -> Vec<Finding> {
    let idx = SymbolIndex::build(files);
    let mut out = Vec::new();
    lint_determinism(files, &idx, &mut out);
    lint_conc_thread_local(files, &idx, &mut out);
    lint_conc_panic_payload(files, &idx, &mut out);
    lint_dur_fsync(files, &idx, &mut out);
    lint_dur_framing(files, &mut out);
    lint_dur_group_ack(files, &idx, &mut out);
    lint_dur_atomic_publish(files, &idx, &mut out);
    lint_contract_exit(files, &mut out);
    lint_contract_span(files, &mut out);
    lint_contract_curve_eq(files, &mut out);
    // Distinct passes can rediscover the same site (e.g. two fan_out
    // call sites reaching one bad function); report each site once.
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.lint.as_str(), a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.lint.as_str(),
            b.message.as_str(),
        ))
    });
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.lint == b.lint);
    out
}

/// Paths deepcheck scans: first-party `src/` trees. Integration tests,
/// benches, examples, and the lint fixture corpus are out of scope.
fn in_scope(path: &str) -> bool {
    !path
        .split('/')
        .any(|seg| matches!(seg, "tests" | "benches" | "examples" | "fixtures"))
}

/// Emit a finding unless the line is test code or carries a *named*
/// allow (blanket `all` does not satisfy deepcheck lints).
fn emit(file: &ScannedFile, out: &mut Vec<Finding>, line: usize, lint: &str, message: String) {
    if file.line_in_test(line) || file.allowed_named(line, lint) {
        return;
    }
    out.push(Finding {
        lint: lint.to_string(),
        file: file.path.clone(),
        line,
        message,
        snippet: file.snippet(line).to_string(),
    });
}

/// `toks[i]` and `toks[i+1]` form a `::` path separator.
fn path_sep(toks: &[Token], i: usize) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct(':')) && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
}

// ---------------------------------------------------------------------------
// Determinism: det-hash-iter, det-wall-clock
// ---------------------------------------------------------------------------

/// Definition indices of the emit roots.
fn emit_roots(idx: &SymbolIndex) -> Vec<usize> {
    idx.fns
        .iter()
        .enumerate()
        .filter(|(_, d)| {
            let path = idx.files[d.file].path.as_str();
            in_scope(path)
                && !d.is_test
                && (EMIT_ROOT_FILES.iter().any(|s| path.ends_with(s))
                    || EMIT_ROOT_FNS.contains(&d.name.as_str()))
        })
        .map(|(i, _)| i)
        .collect()
}

/// Names bound to `HashMap`/`HashSet` values in this file: type
/// annotations (`name: HashMap<…>`, struct fields, params) and direct
/// constructor assignments (`let name = HashMap::new()`).
fn hash_typed_names(file: &ScannedFile) -> BTreeSet<String> {
    let toks = &file.tokens;
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        if !(toks[i].is_ident("HashMap") || toks[i].is_ident("HashSet")) {
            continue;
        }
        // Walk back over `std :: collections ::` style path prefixes and
        // the annotation colon to the token that introduces the type.
        let mut j = i;
        while j > 0 {
            let p = &toks[j - 1];
            let is_path_bit = p.is_punct(':')
                || p.is_punct('&')
                || p.is_ident("mut")
                || p.kind == TokenKind::Lifetime
                || p.is_ident("std")
                || p.is_ident("collections")
                || p.is_ident("hash_map")
                || p.is_ident("hash_set");
            if is_path_bit {
                j -= 1;
            } else {
                break;
            }
        }
        let Some(p) = j.checked_sub(1).map(|p| &toks[p]) else {
            continue;
        };
        match (p.kind == TokenKind::Ident, p.text.as_str()) {
            // `name: HashMap<…>` — annotation on a let/field/param.
            (true, name) if !index::KEYWORDS.contains(&name) => {
                names.insert(name.to_string());
            }
            // `let name = HashMap::new()` / `with_capacity(…)`.
            (false, "=") => {
                if let Some(name) = j
                    .checked_sub(2)
                    .map(|p| &toks[p])
                    .filter(|t| t.kind == TokenKind::Ident)
                {
                    names.insert(name.text.clone());
                }
            }
            _ => {}
        }
    }
    names
}

/// Is the token at `i` inside a non-test function reachable from the
/// emit roots?
fn on_emit_path(idx: &SymbolIndex, fi: usize, i: usize, reach: &[bool]) -> bool {
    idx.enclosing_fn(fi, i)
        .is_some_and(|d| reach[d] && !idx.fns[d].is_test)
}

fn lint_determinism(files: &[ScannedFile], idx: &SymbolIndex, out: &mut Vec<Finding>) {
    let reach = idx.reachable(&emit_roots(idx));
    for (fi, file) in files.iter().enumerate() {
        if !in_scope(&file.path) {
            continue;
        }
        let hash_names = hash_typed_names(file);
        let toks = &file.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            // `Instant::now()` / `SystemTime::now()`.
            if (t.is_ident("Instant") || t.is_ident("SystemTime"))
                && path_sep(toks, i + 1)
                && toks.get(i + 3).is_some_and(|n| n.is_ident("now"))
                && !WALL_CLOCK_EXEMPT.contains(&file.path.as_str())
                && on_emit_path(idx, fi, i, &reach)
            {
                emit(
                    file,
                    out,
                    t.line,
                    "det-wall-clock",
                    format!(
                        "`{}::now()` on a path reachable from report/journal emission makes \
                         output depend on wall-clock time",
                        t.text
                    ),
                );
            }
            // `name.iter()` / `name.keys()` / … on a hash-typed binding.
            if t.kind == TokenKind::Ident
                && HASH_ITER_METHODS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                && i >= 2
                && toks[i - 1].is_punct('.')
                && toks[i - 2].kind == TokenKind::Ident
                && hash_names.contains(&toks[i - 2].text)
                && on_emit_path(idx, fi, i, &reach)
            {
                emit(
                    file,
                    out,
                    t.line,
                    "det-hash-iter",
                    format!(
                        "`.{}()` iterates hash-ordered `{}` on a path reachable from \
                         report/journal emission; use an ordered collection or sort first",
                        t.text,
                        toks[i - 2].text
                    ),
                );
            }
            // `for pat in [&]name { … }` over a hash-typed binding.
            if t.is_ident("for") {
                if let Some((line, name)) = for_loop_over(toks, i, &hash_names) {
                    if on_emit_path(idx, fi, i, &reach) {
                        emit(
                            file,
                            out,
                            line,
                            "det-hash-iter",
                            format!(
                                "`for … in {name}` iterates a hash-ordered collection on a path \
                                 reachable from report/journal emission; use an ordered \
                                 collection or sort first"
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// If `toks[for_at]` heads a `for pat in [&]name {` loop whose iterated
/// binding is hash-typed, return `(line, name)`.
fn for_loop_over(
    toks: &[Token],
    for_at: usize,
    hash_names: &BTreeSet<String>,
) -> Option<(usize, String)> {
    // Locate `in` at bracket depth 0 (the pattern may contain `(a, b)`).
    let mut depth = 0i64;
    let mut j = for_at + 1;
    let mut in_at = None;
    while j < toks.len() && j < for_at + 40 {
        let t = &toks[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" => break, // body started without `in`: not a for-loop head
                _ => {}
            }
        } else if t.is_ident("in") && depth == 0 {
            in_at = Some(j);
            break;
        }
        j += 1;
    }
    let mut k = in_at? + 1;
    while toks
        .get(k)
        .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
    {
        k += 1;
    }
    if toks.get(k).is_some_and(|t| t.is_ident("self"))
        && toks.get(k + 1).is_some_and(|t| t.is_punct('.'))
    {
        k += 2;
    }
    let name = toks.get(k).filter(|t| t.kind == TokenKind::Ident)?;
    // Method chains (`name.keys()`) are handled by the method pattern.
    let body_next = toks.get(k + 1).is_some_and(|t| t.is_punct('{'));
    (body_next && hash_names.contains(&name.text)).then(|| (name.line, name.text.clone()))
}

// ---------------------------------------------------------------------------
// Concurrency: conc-thread-local, conc-panic-payload
// ---------------------------------------------------------------------------

/// Top-level argument ranges of a call whose `(` is at `open`.
fn call_args(toks: &[Token], open: usize) -> Option<Vec<Range<usize>>> {
    let mut depth = 0i64;
    let mut args = Vec::new();
    let mut start = open + 1;
    let mut k = open;
    while let Some(t) = toks.get(k) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        if start < k {
                            args.push(start..k);
                        }
                        return Some(args);
                    }
                }
                "," if depth == 1 => {
                    args.push(start..k);
                    start = k + 1;
                }
                _ => {}
            }
        }
        k += 1;
    }
    None
}

/// Thread-local touches inside a token range: `limits::install` /
/// `limits::current` (stack management belongs to `fan_out` alone),
/// `thread_local!` declarations, and `STATIC.with(…)` accesses.
fn thread_local_touches(toks: &[Token], range: Range<usize>) -> Vec<(usize, String)> {
    let mut hits = Vec::new();
    for i in range {
        let Some(t) = toks.get(i) else { break };
        if t.is_ident("limits")
            && path_sep(toks, i + 1)
            && toks
                .get(i + 3)
                .is_some_and(|n| n.is_ident("install") || n.is_ident("current"))
        {
            hits.push((
                t.line,
                format!(
                    "`limits::{}` re-enters the budget thread-local stack; only `fan_out` \
                     itself may snapshot/reinstall it",
                    toks[i + 3].text
                ),
            ));
        }
        if t.is_ident("thread_local") && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            hits.push((
                t.line,
                "declares a thread-local inside code reachable from a `fan_out` job".to_string(),
            ));
        }
        let all_caps = t.kind == TokenKind::Ident
            && t.text.len() > 1
            && t.text
                .chars()
                .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
            && t.text.chars().any(|c| c.is_ascii_uppercase());
        if all_caps
            && toks.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("with"))
            && toks.get(i + 3).is_some_and(|n| n.is_punct('('))
        {
            hits.push((
                t.line,
                format!(
                    "`{}.with(…)` accesses a thread-local static from code reachable from a \
                     `fan_out` job",
                    t.text
                ),
            ));
        }
    }
    hits
}

fn lint_conc_thread_local(files: &[ScannedFile], idx: &SymbolIndex, out: &mut Vec<Finding>) {
    let stop: BTreeSet<&str> = index::STOP_NAMES.iter().copied().collect();
    for (fi, file) in files.iter().enumerate() {
        if !in_scope(&file.path) {
            continue;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_ident("fan_out")
                || !toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                || file.line_in_test(toks[i].line)
            {
                continue;
            }
            if i > 0 && toks[i - 1].is_ident("fn") {
                continue; // the definition, not a call
            }
            let Some(args) = call_args(toks, i + 1) else {
                continue;
            };
            let Some(job) = args.last().cloned() else {
                continue;
            };
            let encl = idx.enclosing_fn(fi, i);

            // Resolve the job: every ident in the argument, through local
            // closures of the enclosing fn, then fn definitions by name.
            let mut seed_defs: Vec<usize> = Vec::new();
            let mut ranges: Vec<(usize, Range<usize>)> = Vec::new();
            if toks[job.clone()].iter().any(|t| t.is_punct('|')) {
                ranges.push((fi, job.clone())); // inline closure literal
            }
            let mut work: Vec<String> = toks[job.clone()]
                .iter()
                .filter(|t| t.kind == TokenKind::Ident)
                .filter(|t| !index::KEYWORDS.contains(&t.text.as_str()))
                .map(|t| t.text.clone())
                .collect();
            let mut seen_names: BTreeSet<String> = BTreeSet::new();
            while let Some(n) = work.pop() {
                if stop.contains(n.as_str()) || !seen_names.insert(n.clone()) {
                    continue;
                }
                let closure = encl.and_then(|d| {
                    idx.closures[d]
                        .iter()
                        .find(|c| c.name == n)
                        .map(|c| c.body.clone())
                });
                if let Some(body) = closure {
                    work.extend(index::call_names(toks, body.clone()));
                    ranges.push((fi, body));
                } else if let Some(defs) = idx.by_name.get(&n) {
                    seed_defs.extend(defs.iter().copied());
                }
            }

            // Expand to every reachable definition and scan each body.
            let reach = idx.reachable(&seed_defs);
            for (di, d) in idx.fns.iter().enumerate() {
                if reach[di] && !d.is_test {
                    ranges.push((d.file, d.body.clone()));
                }
            }
            for (rf, range) in ranges {
                let rfile = &files[rf];
                if THREAD_LOCAL_HOME.contains(&rfile.path.as_str()) || !in_scope(&rfile.path) {
                    continue;
                }
                for (line, msg) in thread_local_touches(&rfile.tokens, range) {
                    emit(rfile, out, line, "conc-thread-local", msg);
                }
            }
        }
    }
}

/// Token index of the `fn` keyword opening the signature whose body
/// starts at `body_open` (falls back just past the previous item end).
fn sig_start(toks: &[Token], body_open: usize) -> usize {
    let mut j = body_open;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.is_ident("fn") {
            return j;
        }
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return j + 1;
        }
    }
    0
}

fn lint_conc_panic_payload(files: &[ScannedFile], idx: &SymbolIndex, out: &mut Vec<Finding>) {
    for (fi, file) in files.iter().enumerate() {
        if !in_scope(&file.path) {
            continue;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_ident("panic_any") || !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            if i > 0 && (toks[i - 1].is_ident("fn") || toks[i - 1].is_ident("use")) {
                continue;
            }
            let arg_ok = call_args(toks, i + 1).is_some_and(|args| {
                args.iter()
                    .any(|r| toks[r.clone()].iter().any(|t| t.is_ident("BudgetBreach")))
            });
            // Approximation: a payload built earlier in the same function
            // counts when the function (signature included) visibly
            // works with BudgetBreach.
            let fn_ok = idx.enclosing_fn(fi, i).is_some_and(|d| {
                let body = idx.fns[d].body.clone();
                let sig = sig_start(toks, body.start);
                toks[sig..body.end]
                    .iter()
                    .any(|t| t.is_ident("BudgetBreach"))
            });
            if !arg_ok && !fn_ok {
                emit(
                    file,
                    out,
                    toks[i].line,
                    "conc-panic-payload",
                    "`panic_any` payload is not visibly a `BudgetBreach`; `fan_out` only \
                     rethrows `BudgetBreach` payloads intact"
                        .to_string(),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Durability: dur-fsync, dur-framing, dur-group-ack, dur-atomic-publish
// ---------------------------------------------------------------------------

fn lint_dur_fsync(files: &[ScannedFile], idx: &SymbolIndex, out: &mut Vec<Finding>) {
    for d in &idx.fns {
        let file = &files[d.file];
        if !file.path.starts_with(DURABILITY_SRC) || !in_scope(&file.path) || d.is_test {
            continue;
        }
        let toks = &file.tokens;
        let mut writes: Vec<usize> = Vec::new();
        let mut syncs: Vec<usize> = Vec::new();
        let mut first_append: Option<usize> = None;
        let mut first_ack: Option<usize> = None;
        for i in d.body.clone() {
            let t = &toks[i];
            if t.kind == TokenKind::Ident && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                match t.text.as_str() {
                    "write_all" | "set_len" => writes.push(i),
                    // A `fs.write(..)` through the storage trait is a
                    // journal/snapshot write even though the method is
                    // just `write`; the narrow receiver check keeps
                    // socket `write` calls out.
                    "write"
                        if i >= 2 && toks[i - 1].is_punct('.') && toks[i - 2].is_ident("fs") =>
                    {
                        writes.push(i)
                    }
                    "sync_data" | "sync_all" => syncs.push(i),
                    "append" if first_append.is_none() => first_append = Some(i),
                    _ => {}
                }
            }
            if t.is_ident("Response")
                && path_sep(toks, i + 1)
                && toks
                    .get(i + 3)
                    .is_some_and(|n| n.is_ident("Admitted") || n.is_ident("Released"))
                && first_ack.is_none()
            {
                first_ack = Some(i);
            }
        }
        if let Some(&last_write) = writes.last() {
            if !syncs.iter().any(|&s| s > last_write) {
                emit(
                    file,
                    out,
                    toks[last_write].line,
                    "dur-fsync",
                    format!(
                        "`{}` in `{}` is not followed by `sync_data`/`sync_all` in the same \
                         function; journal writes must reach disk before any acknowledgement",
                        toks[last_write].text, d.name
                    ),
                );
            }
        }
        if let (Some(ack), Some(append)) = (first_ack, first_append) {
            if ack < append {
                emit(
                    file,
                    out,
                    toks[ack].line,
                    "dur-fsync",
                    format!(
                        "acknowledgement constructed before the journal append in `{}`; the \
                         WAL write (and its fsync) must dominate the ack",
                        d.name
                    ),
                );
            }
        }
    }
}

fn lint_dur_framing(files: &[ScannedFile], out: &mut Vec<Finding>) {
    for file in files {
        if !in_scope(&file.path) || file.path.starts_with(SELF_SRC) {
            continue;
        }
        let home = file.path == FRAMING_HOME;
        let mut seen_magic = false;
        let mut seen_crc = false;
        for t in &file.tokens {
            if file.line_in_test(t.line) {
                continue;
            }
            let hit = match t.kind {
                TokenKind::StrLit if t.text.contains(MAGIC_NEEDLE) => {
                    Some(("magic marker", &mut seen_magic))
                }
                TokenKind::NumLit if t.text.replace('_', "").to_ascii_lowercase() == CRC_NEEDLE => {
                    Some(("CRC-32 polynomial", &mut seen_crc))
                }
                _ => None,
            };
            let Some((what, seen)) = hit else { continue };
            if !home {
                emit(
                    file,
                    out,
                    t.line,
                    "dur-framing",
                    format!(
                        "journal {what} duplicated outside the journal module; import the \
                         constant from `dnc_service::journal` instead"
                    ),
                );
            } else if *seen {
                emit(
                    file,
                    out,
                    t.line,
                    "dur-framing",
                    format!("journal {what} defined more than once in the journal module"),
                );
            }
            *seen = true;
        }
    }
}

/// Is the token at `i` a call head (`name(`) and not a definition
/// (`fn name(`) or a macro invocation (`name!(`)?
fn is_call_head(toks: &[Token], i: usize) -> bool {
    toks[i].kind == TokenKind::Ident
        && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        && !i
            .checked_sub(1)
            .and_then(|p| toks.get(p))
            .is_some_and(|p| p.is_ident("fn") || p.is_punct('!'))
}

/// `dur-group-ack`: every call to an ack sink ([`ACK_SINKS`]) in the
/// service crate must be *dominated by a journal commit* — an earlier
/// call in the same function body that is a [`COMMIT_CALLS`] primitive
/// directly, or a workspace function from which one is reachable by
/// name. With group commit, the fsync moved out of the per-op path into
/// the batch commit; this pass pins the ordering "fsync, then
/// acknowledge" that `dur-fsync` can no longer see locally.
fn lint_dur_group_ack(files: &[ScannedFile], idx: &SymbolIndex, out: &mut Vec<Finding>) {
    let stop: BTreeSet<&str> = index::STOP_NAMES.iter().copied().collect();
    // Which definitions (transitively) perform a journal commit? Seed
    // with bodies that call a commit primitive, then propagate backwards
    // over name-based call edges to a fixed point.
    let mut commits: Vec<bool> = (0..idx.fns.len())
        .map(|di| {
            idx.calls[di]
                .iter()
                .any(|c| COMMIT_CALLS.contains(&c.as_str()))
        })
        .collect();
    loop {
        let mut changed = false;
        for di in 0..idx.fns.len() {
            if commits[di] {
                continue;
            }
            let reaches = idx.calls[di].iter().any(|name| {
                !stop.contains(name.as_str())
                    && idx
                        .by_name
                        .get(name)
                        .is_some_and(|defs| defs.iter().any(|&d| commits[d]))
            });
            if reaches {
                commits[di] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let commit_dominates = |toks: &[Token], j: usize| {
        let c = &toks[j];
        COMMIT_CALLS.contains(&c.text.as_str())
            || (!stop.contains(c.text.as_str())
                && idx
                    .by_name
                    .get(&c.text)
                    .is_some_and(|defs| defs.iter().any(|&d| commits[d])))
    };
    for d in &idx.fns {
        let file = &files[d.file];
        if !file.path.starts_with(DURABILITY_SRC) || !in_scope(&file.path) || d.is_test {
            continue;
        }
        let toks = &file.tokens;
        for i in d.body.clone() {
            if !is_call_head(toks, i) || !ACK_SINKS.contains(&toks[i].text.as_str()) {
                continue;
            }
            let dominated =
                (d.body.start..i).any(|j| is_call_head(toks, j) && commit_dominates(toks, j));
            if !dominated {
                emit(
                    file,
                    out,
                    toks[i].line,
                    "dur-group-ack",
                    format!(
                        "`{}` acknowledges client operations in `{}` with no dominating \
                         journal commit; a call reaching `append_batch`/`append`/fsync must \
                         come earlier in the function",
                        toks[i].text, d.name
                    ),
                );
            }
        }
    }
}

/// Functions that publish a snapshot under its final name. Each must
/// reach every stage of the atomic-publish protocol through its call
/// graph.
const PUBLISH_FNS: &[&str] = &["publish_snapshot"];

/// The atomic-publish stages and the call names that satisfy each.
const PUBLISH_STAGES: &[(&str, &[&str])] = &[
    ("the temp-file write", &["write", "write_all"]),
    ("the data fsync", &["sync_data", "sync_all"]),
    ("the atomic rename", &["rename"]),
    ("the parent-directory fsync", &["sync_dir"]),
];

/// `dur-atomic-publish`: a snapshot publish site ([`PUBLISH_FNS`]) must
/// reach, through name-based call edges, all four stages of the atomic
/// publish protocol: temp write -> fsync -> rename -> dir fsync
/// ([`PUBLISH_STAGES`]). A missing stage opens a crash window where a
/// torn or unlinked snapshot can be observed under the final name and
/// recovery silently loses the compacted prefix.
fn lint_dur_atomic_publish(files: &[ScannedFile], idx: &SymbolIndex, out: &mut Vec<Finding>) {
    let stop: BTreeSet<&str> = index::STOP_NAMES.iter().copied().collect();
    for (di, d) in idx.fns.iter().enumerate() {
        let file = &files[d.file];
        if !file.path.starts_with(DURABILITY_SRC)
            || !in_scope(&file.path)
            || d.is_test
            || !PUBLISH_FNS.contains(&d.name.as_str())
        {
            continue;
        }
        // Forward reachability: union of call names over every
        // definition reachable from the publish function.
        let mut reached: BTreeSet<&str> = BTreeSet::new();
        let mut seen = vec![false; idx.fns.len()];
        let mut stack = vec![di];
        while let Some(f) = stack.pop() {
            if std::mem::replace(&mut seen[f], true) {
                continue;
            }
            for name in &idx.calls[f] {
                reached.insert(name.as_str());
                if stop.contains(name.as_str()) {
                    continue;
                }
                if let Some(defs) = idx.by_name.get(name) {
                    stack.extend(defs.iter().copied());
                }
            }
        }
        let missing: Vec<&str> = PUBLISH_STAGES
            .iter()
            .filter(|(_, calls)| !calls.iter().any(|c| reached.contains(c)))
            .map(|(stage, _)| *stage)
            .collect();
        if !missing.is_empty() {
            let toks = &file.tokens;
            emit(
                file,
                out,
                toks[sig_start(toks, d.body.start)].line,
                "dur-atomic-publish",
                format!(
                    "`{}` never reaches {} through its call graph; a snapshot is only \
                     crash-atomic when it is staged as temp write -> fsync -> rename -> \
                     parent-dir fsync",
                    d.name,
                    missing.join(", ")
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Contract: contract-exit, contract-span
// ---------------------------------------------------------------------------

fn lint_contract_exit(files: &[ScannedFile], out: &mut Vec<Finding>) {
    for file in files {
        if !in_scope(&file.path) || file.path == EXIT_TABLE {
            continue;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            // `process::exit(<literal>)`.
            if t.is_ident("exit")
                && i >= 3
                && toks[i - 3].is_ident("process")
                && path_sep(toks, i - 2)
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                && toks.get(i + 2).is_some_and(|n| n.kind == TokenKind::NumLit)
            {
                emit(
                    file,
                    out,
                    t.line,
                    "contract-exit",
                    format!(
                        "`process::exit({})` uses a bare exit-code literal; use the unified \
                         exit-code table (`dnc_bench::exit`)",
                        toks[i + 2].text
                    ),
                );
            }
            // `ExitCode::from(<literal>)`.
            if t.is_ident("ExitCode")
                && path_sep(toks, i + 1)
                && toks.get(i + 3).is_some_and(|n| n.is_ident("from"))
                && toks.get(i + 4).is_some_and(|n| n.is_punct('('))
                && toks.get(i + 5).is_some_and(|n| n.kind == TokenKind::NumLit)
            {
                emit(
                    file,
                    out,
                    t.line,
                    "contract-exit",
                    format!(
                        "`ExitCode::from({})` uses a bare exit-code literal; use the unified \
                         exit-code table (`dnc_bench::exit`)",
                        toks[i + 5].text
                    ),
                );
            }
            // `code: <literal>` struct-field initializers (CLI errors).
            if t.is_ident("code")
                && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && !toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
                && toks.get(i + 2).is_some_and(|n| n.kind == TokenKind::NumLit)
            {
                emit(
                    file,
                    out,
                    t.line,
                    "contract-exit",
                    format!(
                        "`code: {}` hardcodes an exit code; use the unified exit-code table \
                         (`dnc_bench::exit`)",
                        toks[i + 2].text
                    ),
                );
            }
        }
    }
}

fn lint_contract_span(files: &[ScannedFile], out: &mut Vec<Finding>) {
    for file in files {
        if !in_scope(&file.path) {
            continue;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_ident("span") || !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            if i > 0 && (toks[i - 1].is_ident("fn") || toks[i - 1].is_punct('.')) {
                continue; // a definition, or a method on some other type
            }
            // Walk back over a `crate_name ::` path prefix.
            let mut j = i;
            while j >= 2 && path_sep(toks, j - 2) {
                j -= 2;
                if j >= 1 && toks[j - 1].kind == TokenKind::Ident {
                    j -= 1;
                } else {
                    break;
                }
            }
            let head = j.checked_sub(1).map(|p| &toks[p]);
            let discarded_stmt = match head {
                None => true,
                Some(p) => p.is_punct(';') || p.is_punct('{') || p.is_punct('}'),
            };
            let bound_to_wildcard = head.is_some_and(|p| p.is_punct('='))
                && j >= 2
                && toks[j - 2].is_ident("_")
                && j >= 3
                && toks[j - 3].is_ident("let");
            if discarded_stmt || bound_to_wildcard {
                emit(
                    file,
                    out,
                    toks[i].line,
                    "contract-span",
                    "telemetry span guard is dropped immediately (statement position or \
                     `let _ =`); bind it (`let _g = span(…)`) so open/close stay balanced"
                        .to_string(),
                );
            }
        }
    }
}

/// Canonical curve equality: the interner (DESIGN §18.1) guarantees
/// two `Curve`s are functionally equal iff they are structurally
/// equal, so `Curve`/`CurveId` `==` is both correct and O(1)-amortized.
/// Comparing the raw segment slices (`a.points() == b.points()`)
/// re-walks every breakpoint, bypasses the canonical-equality
/// contract, and silently diverges if a future representation change
/// makes slice identity stricter than curve identity.
fn lint_contract_curve_eq(files: &[ScannedFile], out: &mut Vec<Finding>) {
    for file in files {
        if !in_scope(&file.path) {
            continue;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_ident("points")
                || i == 0
                || !toks[i - 1].is_punct('.')
                || !toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                || !toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
            {
                continue;
            }
            // `….points() ==` / `!=` — the slice is the left operand.
            let left_operand = toks
                .get(i + 3)
                .is_some_and(|t| t.is_punct('=') || t.is_punct('!'))
                && toks.get(i + 4).is_some_and(|t| t.is_punct('='));
            // `… == x.y.points()` — walk back over the receiver chain
            // (`ident . ident . … .`) to see whether the whole call is
            // the right operand of a comparison.
            let mut j = i - 1; // the `.` before `points`
            while j >= 2 && toks[j - 1].kind == TokenKind::Ident && toks[j - 2].is_punct('.') {
                j -= 2;
            }
            // A further `.method()` after the call means the operand is
            // whatever the chain produces, not the segment slice.
            let chained = toks.get(i + 3).is_some_and(|t| t.is_punct('.'));
            let right_operand = !chained
                && j >= 3
                && toks[j - 1].kind == TokenKind::Ident
                && toks[j - 2].is_punct('=')
                && (toks[j - 3].is_punct('=') || toks[j - 3].is_punct('!'));
            if left_operand || right_operand {
                emit(
                    file,
                    out,
                    toks[i].line,
                    "contract-curve-eq",
                    "curve compared segment-by-segment via `.points()`; interned curves \
                     are canonical, so compare the `Curve` (or `CurveId`) values directly \
                     (DESIGN §18)"
                        .to_string(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(path: &str, src: &str) -> ScannedFile {
        ScannedFile::new(path.to_string(), src.to_string())
    }

    fn lints_of(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.lint.as_str()).collect()
    }

    // --- determinism -----------------------------------------------------

    #[test]
    fn hash_iteration_on_emit_path_is_flagged() {
        let files = vec![scan(
            "crates/fake/src/report.rs",
            "use std::collections::HashMap;\n\
             pub fn render(m: &HashMap<String, u32>) -> String {\n\
                 let mut out = String::new();\n\
                 for (k, v) in m.iter() { out.push_str(k); }\n\
                 out\n\
             }\n",
        )];
        let f = run(&files);
        assert_eq!(lints_of(&f), ["det-hash-iter"], "{f:?}");
        assert!(f[0].message.contains('m'));
    }

    #[test]
    fn for_loop_over_hash_binding_is_flagged() {
        let files = vec![scan(
            "crates/fake/src/export.rs",
            "pub fn dump(names: std::collections::HashSet<String>) {\n\
                 for n in &names { println!(\"{n}\"); }\n\
             }\n",
        )];
        let f = run(&files);
        assert_eq!(lints_of(&f), ["det-hash-iter"], "{f:?}");
    }

    #[test]
    fn wall_clock_reachable_from_root_is_flagged_transitively() {
        let files = vec![
            scan(
                "crates/fake/src/report.rs",
                "pub fn render() { stamp_it(); }\n",
            ),
            scan(
                "crates/fake/src/other.rs",
                "pub fn stamp_it() { let _t = std::time::Instant::now(); }\n",
            ),
        ];
        let f = run(&files);
        assert_eq!(lints_of(&f), ["det-wall-clock"], "{f:?}");
        assert_eq!(f[0].file, "crates/fake/src/other.rs");
    }

    #[test]
    fn unreachable_and_ordered_shapes_stay_clean() {
        let files = vec![
            // Emit root iterating a BTreeMap and *looking up* in a HashMap:
            // both deterministic.
            scan(
                "crates/fake/src/report.rs",
                "pub fn render(b: &std::collections::BTreeMap<u32, u32>, m: &std::collections::HashMap<u32, u32>) {\n\
                     for (k, v) in b.iter() { let _ = m.get(k); }\n\
                 }\n",
            ),
            // Hash iteration + wall clock in a fn nothing reaches.
            scan(
                "crates/fake/src/dead.rs",
                "fn never_called(m: &std::collections::HashMap<u32, u32>) {\n\
                     for x in m.keys() { let _ = x; }\n\
                     let _t = std::time::Instant::now();\n\
                 }\n",
            ),
        ];
        let f = run(&files);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn named_allow_suppresses_but_blanket_does_not() {
        let src = "pub fn render() {\n\
                   let _t = std::time::Instant::now(); // audit: allow(det-wall-clock, timing footer only)\n\
                   }\n";
        let files = vec![scan("crates/fake/src/report.rs", src)];
        assert!(run(&files).is_empty());
        let blanket = src.replace("allow(det-wall-clock,", "allow(all,");
        let files = vec![scan("crates/fake/src/report.rs", &blanket)];
        assert_eq!(lints_of(&run(&files)), ["det-wall-clock"]);
    }

    // --- concurrency -----------------------------------------------------

    #[test]
    fn fan_out_job_touching_limits_stack_is_flagged() {
        let files = vec![scan(
            "crates/fake/src/engine2.rs",
            "pub fn run(n: usize) {\n\
                 let job = |k: usize| { helper(k); };\n\
                 fan_out(n, 2, &job);\n\
             }\n\
             fn helper(k: usize) { limits::install(None); }\n",
        )];
        let f = run(&files);
        assert_eq!(lints_of(&f), ["conc-thread-local"], "{f:?}");
        assert!(f[0].message.contains("install"));
    }

    #[test]
    fn fan_out_inline_closure_with_thread_local_access_is_flagged() {
        let files = vec![scan(
            "crates/fake/src/engine2.rs",
            "pub fn run(n: usize) {\n\
                 fan_out(n, 2, &|k: usize| SCRATCH.with(|s| s.set(k)));\n\
             }\n",
        )];
        let f = run(&files);
        assert_eq!(lints_of(&f), ["conc-thread-local"], "{f:?}");
    }

    #[test]
    fn fan_out_job_with_plain_compute_is_clean() {
        let files = vec![scan(
            "crates/fake/src/engine2.rs",
            "pub fn run(n: usize) {\n\
                 let job = |k: usize| { compute(k); };\n\
                 fan_out(n, 2, &job);\n\
             }\n\
             fn compute(k: usize) -> usize { k * 2 }\n\
             fn unrelated() { limits::install(None); }\n",
        )];
        let f = run(&files);
        assert!(f.is_empty(), "unreached fns must not taint the job: {f:?}");
    }

    #[test]
    fn panic_any_payload_rules() {
        let files = vec![scan(
            "crates/fake/src/breach.rs",
            "fn good(b: BudgetBreach) { std::panic::panic_any(b); }\n\
             fn also_good() { if let Some(b) = breach() { let b: BudgetBreach = b; std::panic::panic_any(b); } }\n\
             fn bad() { std::panic::panic_any(format!(\"boom\")); }\n",
        )];
        let f = run(&files);
        assert_eq!(lints_of(&f), ["conc-panic-payload"], "{f:?}");
        assert!(f[0].snippet.contains("boom"));
    }

    // --- durability ------------------------------------------------------

    #[test]
    fn write_without_sync_in_service_is_flagged() {
        let files = vec![scan(
            "crates/service/src/bad.rs",
            "pub fn persist(f: &mut std::fs::File, buf: &[u8]) {\n\
                 f.write_all(buf).ok();\n\
             }\n",
        )];
        let f = run(&files);
        assert_eq!(lints_of(&f), ["dur-fsync"], "{f:?}");
    }

    #[test]
    fn write_followed_by_sync_is_clean() {
        let files = vec![scan(
            "crates/service/src/good.rs",
            "pub fn persist(f: &mut std::fs::File, buf: &[u8]) {\n\
                 f.write_all(buf).ok();\n\
                 f.sync_data().ok();\n\
             }\n",
        )];
        assert!(run(&files).is_empty());
    }

    #[test]
    fn ack_constructed_before_append_is_flagged() {
        let files = vec![scan(
            "crates/service/src/bad2.rs",
            "pub fn admit(j: &mut J) -> Response {\n\
                 let resp = Response::Admitted { id: 1 };\n\
                 j.append(&op());\n\
                 resp\n\
             }\n",
        )];
        let f = run(&files);
        assert_eq!(lints_of(&f), ["dur-fsync"], "{f:?}");
        assert!(f[0].message.contains("before the journal append"));
    }

    #[test]
    fn append_then_ack_is_clean_and_ack_without_append_ignored() {
        let files = vec![scan(
            "crates/service/src/good2.rs",
            "pub fn admit(j: &mut J) -> Response {\n\
                 j.append(&op());\n\
                 Response::Admitted { id: 1 }\n\
             }\n\
             pub fn committed(r: &Response) -> bool {\n\
                 matches!(r, Response::Admitted { .. })\n\
             }\n",
        )];
        assert!(run(&files).is_empty());
    }

    #[test]
    fn framing_constants_outside_journal_are_flagged() {
        let files = vec![
            scan(
                "crates/service/src/journal.rs",
                "pub const MAGIC: &[u8; 6] = b\"DNCJ1\\n\";\n\
                 const POLY: u32 = 0xEDB8_8320;\n",
            ),
            scan(
                "crates/bench/src/churn2.rs",
                "const LOCAL_MAGIC: &[u8] = b\"DNCJ1\\n\";\n\
                 fn crc(x: u32) -> u32 { x ^ 0xedb88320 }\n",
            ),
        ];
        let f = run(&files);
        assert_eq!(lints_of(&f), ["dur-framing", "dur-framing"], "{f:?}");
        assert!(f.iter().all(|x| x.file.contains("churn2")));
    }

    #[test]
    fn duplicate_framing_constant_inside_journal_is_flagged() {
        let files = vec![scan(
            "crates/service/src/journal.rs",
            "pub const MAGIC: &[u8; 6] = b\"DNCJ1\\n\";\n\
             const MAGIC_COPY: &[u8; 6] = b\"DNCJ1\\n\";\n",
        )];
        let f = run(&files);
        assert_eq!(lints_of(&f), ["dur-framing"], "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    // --- contract --------------------------------------------------------

    #[test]
    fn exit_code_literals_are_flagged() {
        let files = vec![scan(
            "crates/bench/src/bin/tool.rs",
            "fn main() {\n\
                 if bad() { std::process::exit(2); }\n\
                 let _e = std::process::ExitCode::from(3);\n\
                 let err = CliError { code: 1, msg: String::new() };\n\
             }\n",
        )];
        let f = run(&files);
        assert_eq!(
            lints_of(&f),
            ["contract-exit", "contract-exit", "contract-exit"],
            "{f:?}"
        );
    }

    #[test]
    fn exit_through_the_table_is_clean() {
        let files = vec![
            scan(
                "crates/bench/src/exit.rs",
                "pub const USAGE: i32 = 2;\n",
            ),
            scan(
                "crates/bench/src/bin/tool.rs",
                "fn main() {\n\
                     std::process::exit(dnc_bench::exit::USAGE);\n\
                     let err = CliError { code: dnc_bench::exit::USAGE as u8, msg: String::new() };\n\
                 }\n",
            ),
        ];
        assert!(run(&files).is_empty());
    }

    #[test]
    fn discarded_span_guards_are_flagged() {
        let files = vec![scan(
            "crates/fake/src/use_spans.rs",
            "fn f() {\n\
                 dnc_telemetry::span(\"a\");\n\
                 let _ = dnc_telemetry::span(\"b\");\n\
                 let _g = dnc_telemetry::span(\"c\");\n\
                 g(span(\"d\"));\n\
             }\n",
        )];
        let f = run(&files);
        assert_eq!(lints_of(&f), ["contract-span", "contract-span"], "{f:?}");
        assert_eq!(f[0].line, 2);
        assert_eq!(f[1].line, 3);
    }

    #[test]
    fn segment_slice_comparisons_are_flagged_on_either_side() {
        let files = vec![scan(
            "crates/fake/src/delta.rs",
            "fn f(a: &Curve, b: &Curve, want: &[Point]) -> bool {\n\
                 let l = a.points() == b.points();\n\
                 let r = want == self.base.points();\n\
                 let n = a.points() != b.points();\n\
                 l && r && n\n\
             }\n",
        )];
        let f = run(&files);
        assert_eq!(
            lints_of(&f),
            [
                "contract-curve-eq",
                "contract-curve-eq",
                "contract-curve-eq"
            ],
            "{f:?}"
        );
        assert_eq!(f[0].line, 2);
        assert_eq!(f[1].line, 3);
        assert_eq!(f[2].line, 4);
    }

    #[test]
    fn canonical_curve_equality_and_slice_inspection_stay_clean() {
        let files = vec![scan(
            "crates/fake/src/delta.rs",
            "fn f(a: &Curve, b: &Curve) -> bool {\n\
                 let eq = a == b;\n\
                 let n = a.points().len() == b.points().len();\n\
                 let head = a.points().first() == b.points().first();\n\
                 eq && n && head\n\
             }\n",
        )];
        let f = run(&files);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn span_definition_site_is_not_flagged() {
        let files = vec![scan(
            "crates/telemetry/src/record.rs",
            "pub fn span(name: &'static str) -> SpanGuard { SpanGuard::open(name) }\n",
        )];
        assert!(run(&files).is_empty());
    }

    // --- scope and plumbing ----------------------------------------------

    #[test]
    fn tests_benches_and_fixtures_are_out_of_scope() {
        let src = "fn f() { std::process::exit(1); }\n";
        for path in [
            "crates/bench/tests/smoke.rs",
            "crates/xtask/fixtures/contract_positive.rs",
            "examples/demo.rs",
        ] {
            let files = vec![scan(path, src)];
            assert!(run(&files).is_empty(), "{path} must be out of scope");
        }
    }

    // --- fixture corpus ---------------------------------------------------

    /// Load a fixture file, scanning it under the synthetic repo path the
    /// fixture's header comment documents.
    fn fixture(name: &str, scan_path: &str) -> ScannedFile {
        let p = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(name);
        let src = std::fs::read_to_string(&p)
            .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", p.display()));
        ScannedFile::new(scan_path.to_string(), src)
    }

    #[test]
    fn fixture_corpus_true_positives_are_caught_and_negatives_stay_clean() {
        let cases: &[(&str, &str, &[&str])] = &[
            (
                "det_positive.rs",
                "crates/fixture/src/report.rs",
                &["det-hash-iter", "det-hash-iter", "det-wall-clock"],
            ),
            ("det_negative.rs", "crates/fixture/src/report.rs", &[]),
            ("det_unreached.rs", "crates/fixture/src/sweep.rs", &[]),
            (
                "conc_positive.rs",
                "crates/fixture/src/sharded.rs",
                &[
                    "conc-panic-payload",
                    "conc-thread-local",
                    "conc-thread-local",
                ],
            ),
            ("conc_negative.rs", "crates/fixture/src/sharded.rs", &[]),
            (
                "dur_positive.rs",
                "crates/service/src/fixture.rs",
                &["dur-framing", "dur-framing", "dur-fsync", "dur-fsync"],
            ),
            ("dur_negative.rs", "crates/service/src/fixture.rs", &[]),
            (
                "dur_group_positive.rs",
                "crates/service/src/fixture.rs",
                &["dur-group-ack", "dur-group-ack"],
            ),
            (
                "dur_group_negative.rs",
                "crates/service/src/fixture.rs",
                &[],
            ),
            (
                "dur_atomic_positive.rs",
                "crates/service/src/fixture.rs",
                &["dur-atomic-publish"],
            ),
            (
                "dur_atomic_negative.rs",
                "crates/service/src/fixture.rs",
                &[],
            ),
            (
                "contract_positive.rs",
                "crates/fixture/src/bin/tool.rs",
                &[
                    "contract-exit",
                    "contract-exit",
                    "contract-exit",
                    "contract-span",
                    "contract-span",
                ],
            ),
            (
                "contract_negative.rs",
                "crates/fixture/src/bin/tool.rs",
                &[],
            ),
            (
                "curve_eq_positive.rs",
                "crates/fixture/src/delta.rs",
                &[
                    "contract-curve-eq",
                    "contract-curve-eq",
                    "contract-curve-eq",
                ],
            ),
            ("curve_eq_negative.rs", "crates/fixture/src/delta.rs", &[]),
        ];
        for &(name, path, expected) in cases {
            let files = vec![fixture(name, path)];
            let findings = run(&files);
            let mut got = lints_of(&findings);
            got.sort_unstable();
            assert_eq!(got, expected, "{name}: {findings:?}");
        }
    }

    #[test]
    fn deepcheck_json_output_shape_is_valid() {
        // Same validation pattern as the audit's report tests: the JSON
        // emitted for a fixture run must carry the baseline's keys and
        // stay structurally balanced (what `diff` against the committed
        // baseline then enforces byte-for-byte in CI).
        let files = vec![fixture("dur_positive.rs", "crates/service/src/fixture.rs")];
        let mut findings = run(&files);
        crate::report::sort_findings(&mut findings);
        let j = crate::report::to_json(&findings, &[], files.len());
        for key in [
            "\"files_scanned\"",
            "\"finding_count\"",
            "\"findings_by_lint\"",
            "\"findings\"",
            "\"allow_count\"",
            "\"allows\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert!(j.contains("\"dur-fsync\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    // --- real service sources: guards present, and removal fires ---------

    /// Read a real `crates/service/src` file from the workspace.
    fn service_source(name: &str) -> String {
        let p = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .expect("xtask has a parent dir")
            .join("service/src")
            .join(name);
        std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("cannot read {}: {e}", p.display()))
    }

    #[test]
    fn real_journal_is_clean_until_the_fsync_is_removed() {
        let src = service_source("journal.rs");
        let path = "crates/service/src/journal.rs";
        let clean = run(&[scan(path, &src)]);
        assert!(clean.is_empty(), "pristine journal must pass: {clean:?}");

        let mutated = src.replace(".and_then(|()| self.fs.sync_data(&self.file))", "");
        assert!(
            mutated.len() < src.len(),
            "fsync-removal mutation must apply"
        );
        let f = run(&[scan(path, &mutated)]);
        assert!(
            f.iter().any(|x| x.lint == "dur-fsync"),
            "dropping the fsync guard must produce a dur-fsync finding: {f:?}"
        );
    }

    #[test]
    fn real_snapshot_publish_is_clean_until_a_stage_is_removed() {
        let src = service_source("snapshot.rs");
        let path = "crates/service/src/snapshot.rs";
        let clean = run(&[scan(path, &src)]);
        assert!(
            clean.is_empty(),
            "pristine snapshot module must pass: {clean:?}"
        );

        let mutated = src.replace("fs.sync_dir(parent_dir(&final_path))?;", "");
        assert!(
            mutated.len() < src.len(),
            "dir-fsync removal mutation must apply"
        );
        let f = run(&[scan(path, &mutated)]);
        assert!(
            f.iter().any(|x| x.lint == "dur-atomic-publish"),
            "dropping the directory fsync from the publish protocol must produce a \
             dur-atomic-publish finding: {f:?}"
        );
    }

    #[test]
    fn real_batcher_is_clean_until_the_group_commit_stops_dominating_the_acks() {
        // The batcher's ack sink is sanctioned only because the call
        // before it reaches `append_batch` through `process_batch`, so
        // the engine and journal sources must be in the scan set.
        let sources = [
            ("crates/service/src/batch.rs", service_source("batch.rs")),
            ("crates/service/src/engine.rs", service_source("engine.rs")),
            (
                "crates/service/src/journal.rs",
                service_source("journal.rs"),
            ),
        ];
        let files: Vec<ScannedFile> = sources.iter().map(|(p, s)| scan(p, s)).collect();
        let clean = run(&files);
        assert!(clean.is_empty(), "pristine batcher must pass: {clean:?}");

        let mutated = sources[0].1.replace("process_batch(", "apply_unjournaled(");
        assert_ne!(mutated, sources[0].1, "commit-detour mutation must apply");
        let files = vec![
            scan("crates/service/src/batch.rs", &mutated),
            scan("crates/service/src/engine.rs", &sources[1].1),
            scan("crates/service/src/journal.rs", &sources[2].1),
        ];
        let f = run(&files);
        assert!(
            f.iter().any(|x| x.lint == "dur-group-ack"),
            "routing the batch around the journaled commit path must produce a \
             dur-group-ack finding: {f:?}"
        );
    }

    #[test]
    fn real_engine_is_clean_until_the_ordered_collection_is_swapped() {
        let src = service_source("engine.rs");
        let path = "crates/service/src/engine.rs";
        let clean = run(&[scan(path, &src)]);
        assert!(clean.is_empty(), "pristine engine must pass: {clean:?}");

        let mutated = src.replace(
            "admitted: Vec<AdmitOp>",
            "admitted: HashMap<usize, AdmitOp>",
        );
        assert_ne!(mutated, src, "ordered-collection mutation must apply");
        let f = run(&[scan(path, &mutated)]);
        assert!(
            f.iter().any(|x| x.lint == "det-hash-iter"),
            "swapping the ordered admitted list for a HashMap must produce a \
             det-hash-iter finding: {f:?}"
        );
    }

    #[test]
    fn hash_typed_names_cover_annotations_and_constructors() {
        let f = scan(
            "crates/fake/src/x.rs",
            "struct S { table: HashMap<u32, u32> }\n\
             fn g(param: &std::collections::HashSet<u32>) {\n\
                 let built = HashMap::new();\n\
                 let plain: Vec<u32> = Vec::new();\n\
             }\n\
             use std::collections::HashMap;\n",
        );
        let names = hash_typed_names(&f);
        assert!(names.contains("table"));
        assert!(names.contains("param"));
        assert!(names.contains("built"));
        assert!(!names.contains("plain"));
        assert!(!names.contains("use"));
    }
}
