//! `cargo xtask` — workspace task runner.
//!
//! The main task is `audit`: a dependency-free static-analysis pass
//! over the workspace sources enforcing the repo's three standing
//! invariants (see DESIGN.md, "Static analysis & invariants"):
//!
//! 1. **Panic-freedom** in the analysis crates (`dnc-num`, `dnc-curves`,
//!    `dnc-core`, `dnc-net`, `dnc-telemetry`): no `.unwrap()` /
//!    `.expect()` / panicking macros / indexing outside `#[cfg(test)]`
//!    code, unless the site carries an
//!    `// audit: allow(<lint>, <reason>)` annotation.
//! 2. **Exactness**: the `f64`/`f32` types appear only in whitelisted
//!    reporting/plotting modules; everything else computes in `Rat`.
//! 3. **Shape contracts**: every `pub fn` in `dnc-curves` / `dnc-core`
//!    that takes or returns a `Curve` documents its shape precondition
//!    (concave / convex / nondecreasing / ...).
//!
//! Usage: `cargo xtask audit [--json]`. Exit code 1 when findings exist,
//! so CI can gate on it. `--json` prints the stable machine-readable
//! report that `results/audit-baseline.json` is a snapshot of.
//!
//! Sibling tasks check emitted telemetry artifacts against their
//! schemas: `cargo xtask validate-metrics <file>...` and
//! `cargo xtask validate-trace <file>...` (CI runs both on the
//! `dnc profile` smoke outputs), plus
//! `cargo xtask validate-bench [--shape] <file>...` for the
//! `dnc-bench/v1` perf trajectories that `cargo xtask bench` appends
//! (see `bench.rs` and DESIGN §15).

mod bench;
mod deepcheck;
mod index;
mod kernel_bench;
mod lexer;
mod lints;
mod report;
mod scan;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use report::{AllowRecord, Finding};
use scan::ScannedFile;

/// Crates whose `src/` trees must be panic-free (L1).
const ANALYSIS_SRC: &[&str] = &[
    "crates/num/src",
    "crates/curves/src",
    "crates/core/src",
    "crates/net/src",
    "crates/telemetry/src",
    "crates/service/src",
];

/// Crates whose public `Curve` API must document shape preconditions (L3).
const SHAPE_DOC_SRC: &[&str] = &["crates/curves/src", "crates/core/src"];

/// Files where `f64` is legitimate: lossy conversion for plotting/CSV.
const FLOAT_WHITELIST: &[&str] = &[
    "crates/num/src/rat.rs",     // Rat::to_f64 — the one sanctioned exit
    "crates/core/src/report.rs", // human-readable report rendering
    "crates/bench/src/chart.rs", // SVG chart geometry
    // Telemetry is reporting-side by design: wall-clock durations and
    // gauge samples are lossy and never feed back into the Rat analysis.
    "crates/telemetry/src/snapshot.rs",
    "crates/telemetry/src/record.rs",
    "crates/telemetry/src/export.rs",
    "crates/telemetry/src/json.rs",
    // Admissions/sec and acks/sec reporting — rates are lossy, never
    // feed back into the Rat analysis.
    "crates/bench/src/throughput.rs",
    "crates/bench/src/socket.rs",
    // The perf-trajectory layer is reporting-side end to end: records,
    // gate math, and dashboard charts consume already-lossy measurements
    // and never feed back into the Rat analysis.
    "crates/bench/src/trajectory.rs",
    "crates/bench/src/dashboard.rs",
    "crates/bench/src/runner.rs",
    // Kernel on/off wall-time ratio display; bounds are compared as Rat
    // strings, only the reported speedup is lossy.
    "crates/xtask/src/kernel_bench.rs",
];

/// Directory trees never scanned (`fixtures` is the deepcheck lint
/// corpus: deliberately seeded findings, exercised only by unit tests).
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "results", "docs", "fixtures"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, flags) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => {
            eprintln!("usage: cargo xtask <audit [--json] | deepcheck [--json] | bench [flags] | kernel-bench [flags] | validate-metrics <file>... | validate-trace <file>... | validate-bench [--shape] <file>...>");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "audit" | "deepcheck" => {
            let json = flags.iter().any(|f| f == "--json");
            if let Some(bad) = flags.iter().find(|f| *f != "--json") {
                eprintln!("xtask {cmd}: unknown flag `{bad}`");
                return ExitCode::FAILURE;
            }
            if cmd == "audit" {
                audit(json)
            } else {
                deepcheck_cmd(json)
            }
        }
        "bench" => bench::bench_cmd(flags),
        "kernel-bench" => kernel_bench::kernel_bench_cmd(flags),
        "validate-metrics" => validate_files(cmd, flags, dnc_telemetry::schema::validate_metrics),
        "validate-trace" => validate_files(cmd, flags, dnc_telemetry::schema::validate_trace),
        "validate-bench" => {
            let shape = flags.iter().any(|f| f == "--shape");
            let paths: Vec<String> = flags.iter().filter(|f| *f != "--shape").cloned().collect();
            if shape {
                shape_files(&paths)
            } else {
                validate_files(cmd, &paths, dnc_telemetry::schema::validate_bench)
            }
        }
        other => {
            eprintln!(
                "xtask: unknown task `{other}` (tasks: audit, deepcheck, bench, kernel-bench, validate-metrics, validate-trace, validate-bench)"
            );
            ExitCode::FAILURE
        }
    }
}

/// `validate-bench --shape`: print each file's last-record shape (sorted
/// `key: type` lines), so CI can diff an appended record against the
/// committed example without comparing values.
fn shape_files(paths: &[String]) -> ExitCode {
    if paths.is_empty() {
        eprintln!("usage: cargo xtask validate-bench [--shape] <file>...");
        return ExitCode::FAILURE;
    }
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                return ExitCode::FAILURE;
            }
        };
        match dnc_telemetry::schema::bench_record_shape(&text) {
            Ok(shape) => print!("{shape}"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Run a schema validator over each listed file; report per-file results
/// and fail if any file is missing, unreadable, or invalid.
fn validate_files(
    task: &str,
    paths: &[String],
    validate: fn(&str) -> Result<(), String>,
) -> ExitCode {
    if paths.is_empty() {
        eprintln!("usage: cargo xtask {task} <file>...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in paths {
        match std::fs::read_to_string(path) {
            Ok(text) => match validate(&text) {
                Ok(()) => println!("{path}: ok"),
                Err(e) => {
                    eprintln!("{path}: INVALID: {e}");
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn audit(json: bool) -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    for top in ["crates", "examples", "tests"] {
        collect_rs(&root.join(top), &mut files);
    }
    files.sort();

    let mut findings: Vec<Finding> = Vec::new();
    let mut allows: Vec<AllowRecord> = Vec::new();
    let mut scanned = 0usize;

    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(source) = std::fs::read_to_string(path) else {
            eprintln!("xtask audit: skipping unreadable file {rel}");
            continue;
        };
        scanned += 1;
        let file = ScannedFile::new(rel.clone(), source);

        if ANALYSIS_SRC.iter().any(|p| rel.starts_with(p)) {
            lints::lint_panic_family(&file, &mut findings);
        }
        if float_lint_applies(&rel) {
            lints::lint_float(&file, &mut findings);
        }
        if SHAPE_DOC_SRC.iter().any(|p| rel.starts_with(p)) {
            lints::lint_doc_shape(&file, &mut findings);
        }
        // Escape-hatch hygiene runs last so `used` flags reflect all
        // passes. The audit owns its own lint names (deepcheck allows in
        // the same file are that task's business) and is the one pass
        // that flags unrecognized lint names.
        lints::lint_stale_allows(&file, &mut findings, lints::AUDIT_LINTS, true);

        for a in &file.allows {
            if a.used.get() {
                allows.push(AllowRecord {
                    lint: a.lint.clone(),
                    file: rel.clone(),
                    line: a.line,
                    reason: a.reason.clone(),
                });
            }
        }
    }

    report::sort_findings(&mut findings);
    report::sort_allows(&mut allows);

    if json {
        print!("{}", report::to_json(&findings, &allows, scanned));
    } else {
        report::print_text("audit", &findings, &allows, scanned);
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `cargo xtask deepcheck [--json]` — the cross-file determinism /
/// concurrency / durability / contract passes. Unlike `audit`, every
/// file is scanned up front so the symbol index sees the whole
/// workspace before any lint runs.
fn deepcheck_cmd(json: bool) -> ExitCode {
    let root = workspace_root();
    let mut paths = Vec::new();
    for top in ["crates", "examples", "tests"] {
        collect_rs(&root.join(top), &mut paths);
    }
    paths.sort();

    let mut files = Vec::new();
    for path in &paths {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(source) = std::fs::read_to_string(path) else {
            eprintln!("xtask deepcheck: skipping unreadable file {rel}");
            continue;
        };
        files.push(ScannedFile::new(rel, source));
    }
    let scanned = files.len();

    let mut findings = deepcheck::run(&files);
    let mut allows: Vec<AllowRecord> = Vec::new();
    for file in &files {
        lints::lint_stale_allows(file, &mut findings, deepcheck::DEEPCHECK_LINTS, false);
        for a in &file.allows {
            if a.used.get() && deepcheck::DEEPCHECK_LINTS.contains(&a.lint.as_str()) {
                allows.push(AllowRecord {
                    lint: a.lint.clone(),
                    file: file.path.clone(),
                    line: a.line,
                    reason: a.reason.clone(),
                });
            }
        }
    }

    report::sort_findings(&mut findings);
    report::sort_allows(&mut allows);

    if json {
        print!("{}", report::to_json(&findings, &allows, scanned));
    } else {
        report::print_text("deepcheck", &findings, &allows, scanned);
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The float lint covers every first-party `src/` tree (the xtask itself
/// included) but not integration-test or bench directories, and not the
/// whitelisted reporting modules.
fn float_lint_applies(rel: &str) -> bool {
    if FLOAT_WHITELIST.contains(&rel) {
        return false;
    }
    // Integration tests / benches may compare against floats freely.
    !rel.split('/').any(|seg| seg == "tests" || seg == "benches")
}

/// Recursively collect `.rs` files, skipping [`SKIP_DIRS`].
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Workspace root: `CARGO_MANIFEST_DIR/../..` when run via cargo, else cwd.
fn workspace_root() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(dir);
        if let Some(root) = p.ancestors().nth(2) {
            return root.to_path_buf();
        }
    }
    std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."))
}
