//! The audit's lint passes, operating on [`ScannedFile`] code masks.
//!
//! Lint names (used in `// audit: allow(<lint>, <reason>)`):
//!
//! | lint        | scope                      | what it flags                              |
//! |-------------|----------------------------|--------------------------------------------|
//! | `unwrap`    | analysis crates            | `.unwrap()` on `Option`/`Result`           |
//! | `expect`    | analysis crates            | `.expect(...)`                             |
//! | `panic`     | analysis crates            | `panic!`, `unreachable!`, `todo!`, `unimplemented!` |
//! | `index`     | analysis crates            | `expr[...]` indexing/slicing (can panic)   |
//! | `float`     | whole workspace            | the `f64` type outside whitelisted modules |
//! | `doc-shape` | `dnc-curves` / `dnc-core`  | `pub fn` taking/returning `Curve` without a shape-precondition doc |
//!
//! `assert!`/`debug_assert!` are deliberately *not* linted: they are the
//! documented precondition mechanism, and the escape hatch would otherwise
//! drown the signal.

use crate::report::Finding;
use crate::scan::ScannedFile;

/// Words that satisfy the `doc-shape` lint when present in a doc comment.
pub const SHAPE_WORDS: &[&str] = &[
    "concave",
    "convex",
    "nondecreasing",
    "non-decreasing",
    "wide-sense",
    "monotone",
    "monotonic",
];

/// Method calls flagged by the `unwrap`/`expect` lints.
const PANIC_METHODS: &[(&str, &str)] = &[(".unwrap()", "unwrap"), (".expect(", "expect")];

/// Macros flagged by the `panic` lint.
const PANIC_MACROS: &[&str] = &["panic!(", "unreachable!(", "todo!(", "unimplemented!("];

/// Is the byte at `pos` preceded by an identifier character?
fn ident_before(code: &str, pos: usize) -> bool {
    code[..pos]
        .chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Is the match at `pos..pos+len` followed by an identifier character?
fn ident_after(code: &str, end: usize) -> bool {
    code[end..]
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// 1-based line number of byte offset `pos`.
fn line_of(code: &str, pos: usize) -> usize {
    code[..pos].bytes().filter(|&b| b == b'\n').count() + 1
}

/// Emit a finding unless the line is test code or carries a matching
/// `audit: allow`.
fn emit(file: &ScannedFile, findings: &mut Vec<Finding>, pos: usize, lint: &str, message: String) {
    let line = line_of(&file.code, pos);
    if file.line_in_test(line) || file.allowed(line, lint) {
        return;
    }
    findings.push(Finding {
        lint: lint.to_string(),
        file: file.path.clone(),
        line,
        message,
        snippet: file.snippet(line).to_string(),
    });
}

/// L1 — panic-freedom: `.unwrap()`, `.expect(`, panicking macros, and
/// indexing expressions in the analysis crates.
pub fn lint_panic_family(file: &ScannedFile, findings: &mut Vec<Finding>) {
    let code = &file.code;
    for &(needle, lint) in PANIC_METHODS {
        let mut from = 0;
        while let Some(found) = code[from..].find(needle) {
            let pos = from + found;
            from = pos + needle.len();
            emit(
                file,
                findings,
                pos,
                lint,
                format!(
                    "`{}` can panic in an analysis hot path",
                    needle.trim_end_matches('(')
                ),
            );
        }
    }
    for &needle in PANIC_MACROS {
        let mut from = 0;
        while let Some(found) = code[from..].find(needle) {
            let pos = from + found;
            from = pos + needle.len();
            // `core::panic!(` etc. still matches; an identifier char right
            // before (e.g. `dont_panic!(`) does not.
            if ident_before(code, pos) {
                continue;
            }
            emit(
                file,
                findings,
                pos,
                "panic",
                format!("`{}` aborts the analysis", needle.trim_end_matches('(')),
            );
        }
    }
    lint_indexing(file, findings);
}

/// The `index` lint: `expr[...]` where `expr` ends in an identifier, `)`,
/// or `]`. Attributes (`#[...]`), array literals/types (preceded by
/// punctuation), and slice patterns don't match because their `[` is not
/// preceded by an expression tail.
fn lint_indexing(file: &ScannedFile, findings: &mut Vec<Finding>) {
    let code = &file.code;
    for (pos, _) in code.match_indices('[') {
        let before = code[..pos].trim_end();
        let Some(prev) = before.chars().next_back() else {
            continue;
        };
        let is_expr_tail = prev.is_alphanumeric() || prev == '_' || prev == ')' || prev == ']';
        if !is_expr_tail {
            continue;
        }
        // Keyword heads (`return [`, `in [`, …) end in an identifier char
        // but are not index bases.
        let tail_word: String = before
            .chars()
            .rev()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        if matches!(
            tail_word.as_str(),
            "return"
                | "in"
                | "if"
                | "else"
                | "match"
                | "break"
                | "mut"
                | "ref"
                | "const"
                | "static"
                | "dyn"
                | "where"
        ) {
            continue;
        }
        // A lifetime (`&'a [T]`) is a slice type, not an index base.
        if before.len() > tail_word.len()
            && before.as_bytes()[before.len() - tail_word.len() - 1] == b'\''
        {
            continue;
        }
        emit(
            file,
            findings,
            pos,
            "index",
            "indexing can panic; prefer `.get()` or document the bound".to_string(),
        );
    }
}

/// L2 — exactness: the `f64` type must not appear outside whitelisted
/// reporting modules. Matches `f64` as a standalone token, so identifiers
/// like `to_f64` or `bound_f64` don't trip it.
pub fn lint_float(file: &ScannedFile, findings: &mut Vec<Finding>) {
    let code = &file.code;
    let mut from = 0;
    while let Some(found) = code[from..].find("f64") {
        let pos = from + found;
        from = pos + 3;
        if ident_before(code, pos) || ident_after(code, pos + 3) {
            continue;
        }
        emit(
            file,
            findings,
            pos,
            "float",
            "`f64` outside report/plot modules breaks the exactness guarantee".to_string(),
        );
    }
    // `f32` would be just as inexact; flag it under the same lint.
    let mut from = 0;
    while let Some(found) = code[from..].find("f32") {
        let pos = from + found;
        from = pos + 3;
        if ident_before(code, pos) || ident_after(code, pos + 3) {
            continue;
        }
        emit(
            file,
            findings,
            pos,
            "float",
            "`f32` outside report/plot modules breaks the exactness guarantee".to_string(),
        );
    }
}

/// L3 — shape contracts: every `pub fn` that takes or returns a `Curve`
/// must carry a doc comment naming its shape precondition (one of
/// [`SHAPE_WORDS`]).
pub fn lint_doc_shape(file: &ScannedFile, findings: &mut Vec<Finding>) {
    let code = &file.code;
    let mut from = 0;
    while let Some(found) = code[from..].find("pub fn ") {
        let pos = from + found;
        from = pos + "pub fn ".len();
        // `pub fn` must start a token run (not e.g. `_pub fn`).
        if ident_before(code, pos) {
            continue;
        }
        let line = line_of(code, pos);
        if file.line_in_test(line) {
            continue;
        }
        // Signature: from `fn` to the body `{` or declaration `;` at
        // angle/paren depth 0.
        let sig_end = signature_end(&code[pos..]).map(|off| pos + off);
        let Some(sig_end) = sig_end else { continue };
        let sig = &code[pos..sig_end];
        if !mentions_curve(sig) {
            continue;
        }
        if file.allowed(line, "doc-shape") {
            continue;
        }
        let doc = file.doc_above(line).to_lowercase();
        if SHAPE_WORDS.iter().any(|w| doc.contains(w)) {
            continue;
        }
        let name: String = sig["pub fn ".len()..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        findings.push(Finding {
            lint: "doc-shape".to_string(),
            file: file.path.clone(),
            line,
            message: format!(
                "`pub fn {name}` takes/returns a Curve but its doc comment names no shape \
                 precondition ({})",
                SHAPE_WORDS.join("/")
            ),
            snippet: file.snippet(line).to_string(),
        });
    }
}

/// Offset of the end of a `pub fn` signature (the `{` or `;` at brace
/// depth 0), or `None` for malformed input.
fn signature_end(code: &str) -> Option<usize> {
    let mut paren = 0i64;
    for (i, c) in code.char_indices() {
        match c {
            '(' | '[' => paren += 1,
            ')' | ']' => paren -= 1,
            '{' | ';' if paren == 0 => return Some(i),
            _ => {}
        }
    }
    None
}

/// Does a signature mention the `Curve` type as a standalone token?
fn mentions_curve(sig: &str) -> bool {
    let mut from = 0;
    while let Some(found) = sig[from..].find("Curve") {
        let pos = from + found;
        from = pos + "Curve".len();
        let before_ok = !sig[..pos]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after_ok = !sig[pos + 5..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

/// Lint names the audit task owns (deepcheck owns
/// [`crate::deepcheck::DEEPCHECK_LINTS`]); `all` is the audit-only
/// blanket — deepcheck findings must be allowed by name.
pub const AUDIT_LINTS: &[&str] = &[
    "unwrap",
    "expect",
    "panic",
    "index",
    "float",
    "doc-shape",
    "all",
];

/// The `stale-allow` lint: escape hatches that suppressed nothing. Run
/// after all other passes so `used` flags are final.
///
/// Allow hygiene is *shared* between `audit` and `deepcheck` but each
/// task polices only the lint names it owns (`owned`), so an unused
/// `allow(det-wall-clock, …)` is not "stale" to the audit — that lint
/// never ran there. Exactly one task (`flag_unknown`, the audit) reports
/// names owned by neither, so typos surface once, not twice.
pub fn lint_stale_allows(
    file: &ScannedFile,
    findings: &mut Vec<Finding>,
    owned: &[&str],
    flag_unknown: bool,
) {
    for a in &file.allows {
        let lint = a.lint.as_str();
        let known =
            AUDIT_LINTS.contains(&lint) || crate::deepcheck::DEEPCHECK_LINTS.contains(&lint);
        if !known {
            if flag_unknown {
                findings.push(Finding {
                    lint: "stale-allow".to_string(),
                    file: file.path.clone(),
                    line: a.line,
                    message: format!(
                        "`audit: allow({lint}, ...)` names a lint no task runs — typo, or a \
                         removed lint"
                    ),
                    snippet: file.snippet(a.line).to_string(),
                });
            }
            continue;
        }
        if !owned.contains(&lint) {
            continue;
        }
        if !a.used.get() {
            findings.push(Finding {
                lint: "stale-allow".to_string(),
                file: file.path.clone(),
                line: a.line,
                message: format!(
                    "`audit: allow({}, ...)` suppressed no finding — remove the stale annotation",
                    a.lint
                ),
                snippet: file.snippet(a.line).to_string(),
            });
        }
        if a.reason.is_empty() {
            findings.push(Finding {
                lint: "stale-allow".to_string(),
                file: file.path.clone(),
                line: a.line,
                message: format!(
                    "`audit: allow({})` has no reason — escape hatches must be justified",
                    a.lint
                ),
                snippet: file.snippet(a.line).to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ScannedFile;

    fn scan(src: &str) -> ScannedFile {
        ScannedFile::new("test.rs".into(), src.to_string())
    }

    fn run_l1(src: &str) -> Vec<Finding> {
        let f = scan(src);
        let mut out = Vec::new();
        lint_panic_family(&f, &mut out);
        out
    }

    #[test]
    fn unwrap_flagged_strings_ignored() {
        let f = run_l1("fn f() { x.unwrap(); let s = \".unwrap()\"; }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "unwrap");
    }

    #[test]
    fn expect_and_macros_flagged() {
        let f = run_l1("fn f() { x.expect(\"msg\"); panic!(\"boom\"); unreachable!(\"no\"); }\n");
        let lints: Vec<&str> = f.iter().map(|x| x.lint.as_str()).collect();
        assert!(lints.contains(&"expect"));
        assert_eq!(lints.iter().filter(|&&l| l == "panic").count(), 2);
    }

    #[test]
    fn test_mod_code_is_exempt() {
        let f = run_l1("#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n");
        assert!(f.is_empty());
    }

    #[test]
    fn allow_suppresses_and_tracks_usage() {
        let src = "fn f() { x.unwrap(); } // audit: allow(unwrap, infallible here)\n";
        let scanned = scan(src);
        let mut out = Vec::new();
        lint_panic_family(&scanned, &mut out);
        assert!(out.is_empty());
        lint_stale_allows(&scanned, &mut out, AUDIT_LINTS, true);
        assert!(out.is_empty(), "used allow must not be stale");
    }

    #[test]
    fn stale_allow_reported() {
        let scanned = scan("fn f() {} // audit: allow(unwrap, nothing here)\n");
        let mut out = Vec::new();
        lint_panic_family(&scanned, &mut out);
        lint_stale_allows(&scanned, &mut out, AUDIT_LINTS, true);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "stale-allow");
    }

    #[test]
    fn stale_allow_ownership_split() {
        // A deepcheck-owned allow is not audit's business even when
        // unused in the audit pass …
        let scanned =
            scan("fn f() {}\n// audit: allow(det-wall-clock, timing footer)\nfn g() {}\n");
        let mut out = Vec::new();
        lint_stale_allows(&scanned, &mut out, AUDIT_LINTS, true);
        assert!(out.is_empty(), "{out:?}");
        // … but it *is* stale to the task that owns the lint.
        lint_stale_allows(&scanned, &mut out, crate::deepcheck::DEEPCHECK_LINTS, false);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("suppressed no finding"));
    }

    #[test]
    fn unknown_lint_names_flagged_once() {
        let scanned = scan("fn f() {} // audit: allow(unwarp, oops)\n");
        let mut out = Vec::new();
        lint_stale_allows(&scanned, &mut out, AUDIT_LINTS, true);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("no task runs"));
        // The non-flagging task stays silent about it.
        let mut out2 = Vec::new();
        lint_stale_allows(
            &scanned,
            &mut out2,
            crate::deepcheck::DEEPCHECK_LINTS,
            false,
        );
        assert!(out2.is_empty(), "{out2:?}");
    }

    #[test]
    fn indexing_flagged_but_not_attrs_or_literals() {
        let f = run_l1("#[derive(Clone)]\nfn f(v: &[u8]) { let a = v[0]; let b = [0u8; 4]; let c: Vec<[u8; 2]> = vec![]; }\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "index");
    }

    #[test]
    fn slice_type_after_lifetime_not_flagged() {
        let f = run_l1("struct S<'a> { order: &'a [u8] }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn float_token_boundaries() {
        let scanned = scan("fn f(x: f64) {}\nfn g() { a.to_f64(); let bound_f64 = 1; }\n");
        let mut out = Vec::new();
        lint_float(&scanned, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn doc_shape_requires_keyword() {
        let src = "\
/// Frobnicates.\n\
pub fn bad(c: &Curve) -> Curve { c.clone() }\n\
/// Requires a concave nondecreasing input.\n\
pub fn good(c: &Curve) -> Curve { c.clone() }\n\
pub fn unrelated(x: u32) -> u32 { x }\n";
        let scanned = scan(src);
        let mut out = Vec::new();
        lint_doc_shape(&scanned, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("bad"));
    }

    #[test]
    fn doc_shape_allow_works() {
        let src = "\
// audit: allow(doc-shape, pure representation accessor)\n\
pub fn points_of(c: &Curve) -> usize { c.len() }\n";
        let scanned = scan(src);
        let mut out = Vec::new();
        lint_doc_shape(&scanned, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
