//! Cross-file symbol index for the deepcheck passes.
//!
//! Built once over every scanned file, the index records:
//!
//! * **function definitions** — name, file, line, and the token range of
//!   the body (brace-matched on the token stream);
//! * **call sites** — for each function, the set of names it calls
//!   (free functions, methods, and path tails alike);
//! * **local closures** — `let name = |…| …;` bindings inside a function
//!   body, so a closure passed by name to `fan_out` can be resolved to
//!   the code it runs.
//!
//! On top sits name-based reachability ([`SymbolIndex::reachable`]): a
//! breadth-first walk of the call graph where an edge `f → g` exists
//! whenever `f`'s body mentions a call named `g` and some function named
//! `g` is defined in the workspace. This is deliberately an
//! **over-approximation** (no type-based method resolution; a call to
//! `Foo::encode` reaches every `encode` in the tree) with one documented
//! correction: ubiquitous trait/std method names ([`STOP_NAMES`]) never
//! create edges, because nearly every such call targets a std type, and
//! following them would make the whole workspace "reachable". The
//! soundness consequences are spelled out in DESIGN §14.

use crate::lexer::{Token, TokenKind};
use crate::scan::ScannedFile;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Method/function names too common to create call-graph edges: calls
/// with these names overwhelmingly target std/trait impls, and an edge
/// to every same-named workspace function would drown reachability.
/// A workspace function with one of these names can still be a *root*;
/// it just cannot be reached by name.
pub const STOP_NAMES: &[&str] = &[
    "new",
    "default",
    "clone",
    "from",
    "into",
    "fmt",
    "drop",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "contains",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok_or",
    "ok_or_else",
    "to_string",
    "as_ref",
    "as_str",
    "as_bytes",
    "min",
    "max",
    "abs",
    "filter",
    "collect",
    "extend",
    "clear",
    "find",
    "position",
    "any",
    "all",
    "count",
    "sum",
    "zip",
    "rev",
    "take",
    "skip",
    "chain",
    "flat_map",
    "flatten",
    "fold",
    "sort",
    "sort_by",
    "sort_by_key",
    "dedup",
    "join",
    "split",
    "trim",
    "parse",
    "write",
    "read",
    "flush",
    "with_capacity",
    "to_owned",
    "to_vec",
    "as_slice",
    "first",
    "last",
    "expect",
    "unwrap",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "ok",
    "err",
    "enumerate",
    "cloned",
    "copied",
    "starts_with",
    "ends_with",
    "replace",
    "chars",
    "bytes",
    "lines",
    "contains_key",
];

/// Keywords that look like call heads (`if (…)`, `match (…)`) but are not.
pub(crate) const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "match", "return", "loop", "in", "as", "move", "ref", "mut",
    "let", "fn", "impl", "where", "pub", "use", "mod", "struct", "enum", "trait", "type", "const",
    "static", "unsafe", "break", "continue", "crate", "super", "self", "Self", "dyn",
];

/// One function definition.
#[derive(Debug)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// Index into the scanned-file slice.
    pub file: usize,
    /// Token range of the body, including the outer braces.
    pub body: Range<usize>,
    /// `true` when the definition sits inside a `#[cfg(test)]` span.
    pub is_test: bool,
}

/// A `let name = |…| …;` closure local to a function body.
#[derive(Debug)]
pub struct LocalClosure {
    /// The binding's name.
    pub name: String,
    /// Token range of the closure body (after the parameter list, up to
    /// the end of the `let` statement).
    pub body: Range<usize>,
}

/// The cross-file symbol index. Lifetimes: borrows the scanned files it
/// was built from.
pub struct SymbolIndex<'a> {
    /// The scanned files, in the order definitions reference them.
    pub files: &'a [ScannedFile],
    /// Every function definition found.
    pub fns: Vec<FnDef>,
    /// Definition indices by function name.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Per definition: the set of names its body calls.
    pub calls: Vec<BTreeSet<String>>,
    /// Per definition: its local closures.
    pub closures: Vec<Vec<LocalClosure>>,
}

impl<'a> SymbolIndex<'a> {
    /// Build the index over `files`.
    pub fn build(files: &'a [ScannedFile]) -> SymbolIndex<'a> {
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            collect_fns(fi, file, &mut fns);
        }
        let mut calls = Vec::with_capacity(fns.len());
        let mut closures = Vec::with_capacity(fns.len());
        for (di, def) in fns.iter().enumerate() {
            by_name.entry(def.name.clone()).or_default().push(di);
            let toks = &files[def.file].tokens;
            calls.push(call_names(toks, def.body.clone()));
            closures.push(local_closures(toks, def.body.clone()));
        }
        SymbolIndex {
            files,
            fns,
            by_name,
            calls,
            closures,
        }
    }

    /// The innermost definition in `file` whose body contains token
    /// index `tok` (nested fns resolve to the inner one).
    pub fn enclosing_fn(&self, file: usize, tok: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, d)| d.file == file && d.body.contains(&tok))
            .min_by_key(|(_, d)| d.body.end - d.body.start)
            .map(|(i, _)| i)
    }

    /// Definition indices reachable from `roots` by following call
    /// names breadth-first (edges through [`STOP_NAMES`] are dropped).
    /// Returns one flag per definition.
    pub fn reachable(&self, roots: &[usize]) -> Vec<bool> {
        let stop: BTreeSet<&str> = STOP_NAMES.iter().copied().collect();
        let mut seen = vec![false; self.fns.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &r in roots {
            if let Some(flag) = seen.get_mut(r) {
                if !*flag {
                    *flag = true;
                    queue.push(r);
                }
            }
        }
        while let Some(at) = queue.pop() {
            for name in &self.calls[at] {
                if stop.contains(name.as_str()) {
                    continue;
                }
                for &target in self.by_name.get(name).map_or(&[][..], |v| v) {
                    if !seen[target] {
                        seen[target] = true;
                        queue.push(target);
                    }
                }
            }
        }
        seen
    }
}

/// Find every `fn name … { … }` in `file` and append a [`FnDef`].
fn collect_fns(fi: usize, file: &ScannedFile, out: &mut Vec<FnDef>) {
    let toks = &file.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        // `fn(&str) -> T` function-pointer types have no name ident.
        if name_tok.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        // Walk to the body `{` (or a `;` for bodyless trait items) at
        // bracket/paren depth 0. Angle brackets are not tracked: `<`/`>`
        // never nest braces in a signature.
        let mut j = i + 2;
        let mut depth = 0i64;
        let mut body_open = None;
        while let Some(t) = toks.get(j) {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        body_open = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i += 2;
            continue;
        };
        // Matching close brace.
        let mut braces = 0i64;
        let mut k = open;
        let mut close = None;
        while let Some(t) = toks.get(k) {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "{" => braces += 1,
                    "}" => {
                        braces -= 1;
                        if braces == 0 {
                            close = Some(k);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        let Some(close) = close else {
            i += 2;
            continue;
        };
        out.push(FnDef {
            name: name_tok.text.clone(),
            file: fi,
            body: open..close + 1,
            is_test: file.line_in_test(line),
        });
        // Continue *inside* the body too: nested fns are definitions.
        i += 2;
    }
}

/// Names called within a token range: `name(` heads that are not
/// keywords, macro invocations (`name!(`), or definitions (`fn name(`).
pub(crate) fn call_names(toks: &[Token], range: Range<usize>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for i in range.clone() {
        let Some(t) = toks.get(i) else { break };
        if t.kind != TokenKind::Ident || KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let Some(next) = toks.get(i + 1) else {
            continue;
        };
        if !next.is_punct('(') {
            continue;
        }
        if let Some(prev) = i.checked_sub(1).and_then(|p| toks.get(p)) {
            if prev.is_ident("fn") || prev.is_punct('!') {
                continue;
            }
        }
        out.insert(t.text.clone());
    }
    out
}

/// `let name = [move] |…| body` closures within a token range. The body
/// extends to the `;` closing the `let` statement at the statement's
/// own bracket depth.
fn local_closures(toks: &[Token], range: Range<usize>) -> Vec<LocalClosure> {
    let mut out = Vec::new();
    let mut i = range.start;
    while i < range.end {
        if !toks[i].is_ident("let") {
            i += 1;
            continue;
        }
        // Pattern: let [mut] NAME [: …] = [move] |
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name_tok) = toks.get(j).filter(|t| t.kind == TokenKind::Ident) else {
            i += 1;
            continue;
        };
        let name = name_tok.text.clone();
        // Find the `=` at depth 0 before the statement ends.
        let mut k = j + 1;
        let mut depth = 0i64;
        let mut eq = None;
        while let Some(t) = toks.get(k) {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=" if depth == 0 => {
                        eq = Some(k);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            k += 1;
        }
        let Some(eq) = eq else {
            i += 1;
            continue;
        };
        let mut v = eq + 1;
        if toks.get(v).is_some_and(|t| t.is_ident("move")) {
            v += 1;
        }
        if !toks.get(v).is_some_and(|t| t.is_punct('|')) {
            i += 1;
            continue;
        }
        // Parameter list: to the matching `|` (an immediate second `|`
        // is the empty list).
        let mut p = v + 1;
        let mut pdepth = 0i64;
        while let Some(t) = toks.get(p) {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "<" => pdepth += 1,
                    ")" | "]" | ">" => pdepth -= 1,
                    "|" if pdepth == 0 => break,
                    _ => {}
                }
            }
            p += 1;
        }
        let body_start = p + 1;
        // Statement end: the `;` at depth 0 relative to the `let`.
        let mut q = body_start;
        let mut sdepth = 0i64;
        let mut body_end = range.end;
        while let Some(t) = toks.get(q) {
            if q >= range.end {
                break;
            }
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => sdepth += 1,
                    ")" | "]" | "}" => sdepth -= 1,
                    ";" if sdepth == 0 => {
                        body_end = q;
                        break;
                    }
                    _ => {}
                }
            }
            q += 1;
        }
        out.push(LocalClosure {
            name,
            body: body_start..body_end,
        });
        i = body_end.max(i + 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> ScannedFile {
        ScannedFile::new("test.rs".into(), src.to_string())
    }

    #[test]
    fn fns_and_bodies_are_found() {
        let files = vec![scan(
            "pub fn outer(x: usize) -> usize {\n    helper(x)\n}\nfn helper(x: usize) -> usize { x + 1 }\n",
        )];
        let idx = SymbolIndex::build(&files);
        assert_eq!(idx.fns.len(), 2);
        assert_eq!(idx.fns[0].name, "outer");
        assert_eq!(idx.fns[1].name, "helper");
        assert!(idx.calls[0].contains("helper"));
        assert!(idx.calls[1].is_empty());
    }

    #[test]
    fn bodyless_trait_items_are_skipped() {
        let files = vec![scan(
            "trait T { fn sig(&self) -> usize; fn has(&self) -> usize { 1 } }\n",
        )];
        let idx = SymbolIndex::build(&files);
        let names: Vec<&str> = idx.fns.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["has"]);
    }

    #[test]
    fn reachability_follows_names_across_files() {
        let files = vec![
            scan("pub fn root() { middle() }\n"),
            scan("pub fn middle() { leaf_op() }\npub fn unrelated() {}\n"),
            scan("pub fn leaf_op() {}\n"),
        ];
        let idx = SymbolIndex::build(&files);
        let root = idx.by_name["root"][0];
        let seen = idx.reachable(&[root]);
        let reached: Vec<&str> = idx
            .fns
            .iter()
            .enumerate()
            .filter(|&(i, _)| seen[i])
            .map(|(_, d)| d.name.as_str())
            .collect();
        assert_eq!(reached, ["root", "middle", "leaf_op"]);
    }

    #[test]
    fn stop_names_do_not_create_edges() {
        let files = vec![
            scan("pub fn root() { list.clone() }\n"),
            scan("pub fn clone() { hidden_op() }\npub fn hidden_op() {}\n"),
        ];
        let idx = SymbolIndex::build(&files);
        let root = idx.by_name["root"][0];
        let seen = idx.reachable(&[root]);
        assert_eq!(seen.iter().filter(|&&s| s).count(), 1, "only the root");
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let files = vec![scan(
            "fn f(x: bool) { if x { println!(\"hi\") } match x { _ => real_call() } }\n",
        )];
        let idx = SymbolIndex::build(&files);
        assert!(idx.calls[0].contains("real_call"));
        assert!(!idx.calls[0].contains("println"));
        assert!(!idx.calls[0].contains("if"));
        assert!(!idx.calls[0].contains("match"));
    }

    #[test]
    fn local_closures_resolve_with_their_bodies() {
        let files = vec![scan(
            "fn f(w: &[usize]) {\n    let per_unit = |k: usize| compute(w[k]);\n    fan_out(w.len(), 2, &per_unit);\n}\nfn compute(x: usize) {}\n",
        )];
        let idx = SymbolIndex::build(&files);
        let f = idx.by_name["f"][0];
        assert_eq!(idx.closures[f].len(), 1);
        let c = &idx.closures[f][0];
        assert_eq!(c.name, "per_unit");
        let called = call_names(&files[0].tokens, c.body.clone());
        assert!(called.contains("compute"), "{called:?}");
    }

    #[test]
    fn nested_fns_resolve_to_the_inner_definition() {
        let files = vec![scan(
            "fn outer() {\n    fn inner() { tick(); }\n    inner();\n}\n",
        )];
        let idx = SymbolIndex::build(&files);
        let tick_tok = files[0]
            .tokens
            .iter()
            .position(|t| t.is_ident("tick"))
            .unwrap();
        let encl = idx.enclosing_fn(0, tick_tok).unwrap();
        assert_eq!(idx.fns[encl].name, "inner");
    }

    #[test]
    fn test_mod_fns_are_marked() {
        let files = vec![scan(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n",
        )];
        let idx = SymbolIndex::build(&files);
        assert!(!idx.fns[0].is_test);
        assert!(idx.fns[1].is_test);
    }
}
