//! A lightweight Rust lexer for the static-analysis passes.
//!
//! One scan of a source file produces three views at once:
//!
//! * a **token stream** ([`Token`]) — identifiers, lifetimes, literals,
//!   and single-character punctuation, each tagged with its 1-based
//!   line. The semantic passes (symbol index, deepcheck lints) walk
//!   this stream instead of re-matching substrings.
//! * the **code mask** — the source with comment, string, and char
//!   contents blanked to spaces (newlines preserved), which the
//!   token-level audit lints still operate on.
//! * the **comment list** ([`Comment`]) — doc/plain comments with their
//!   text, feeding the shape-doc lint and the `audit: allow` parser.
//!
//! The lexer is deliberately not a parser: it resolves exactly the
//! ambiguities that break substring scanning — raw strings (`r#"…"#`
//! with any hash depth, including byte variants), nested `/* /* */ */`
//! block comments, and `'a` lifetimes versus `'a'` char literals — and
//! leaves grammar to the passes above it.

/// What a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `foo`, `HashMap`).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`) — quote included.
    Lifetime,
    /// A char or byte-char literal (`'x'`, `b'\n'`), quotes included.
    CharLit,
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`,
    /// `br"…"`) — delimiters and *unmasked* contents included, so
    /// constant-provenance lints can inspect the literal text.
    StrLit,
    /// A numeric literal run (`42`, `0xEDB8_8320`, `1_000u64`).
    NumLit,
    /// One punctuation character (`(`, `:`, `.`, …).
    Punct,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// The token's source text (unmasked, delimiters included).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Token {
    /// `true` when the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// `true` when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// One comment found in a file (both `//`-family and `/* */`-family).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the comment's first character.
    pub line: usize,
    /// Comment text without the delimiters, trimmed.
    pub text: String,
    /// `true` for `///` and `//!` doc comments.
    pub is_doc: bool,
    /// `true` when the comment occupies its line alone (no code before it).
    pub standalone: bool,
}

/// Everything one lexer pass produces.
pub struct Lexed {
    /// The token stream, in source order.
    pub tokens: Vec<Token>,
    /// All comments, in order.
    pub comments: Vec<Comment>,
    /// The source with comment/string/char contents blanked to spaces
    /// (newlines preserved, so line/column arithmetic matches).
    pub mask: String,
}

/// States of the scanner.
enum State {
    Code,
    LineComment {
        start: usize,
        doc: bool,
    },
    BlockComment {
        depth: usize,
        start: usize,
        doc: bool,
    },
    Str {
        start: usize,
        tok_start: usize,
    },
    RawStr {
        hashes: usize,
        start: usize,
        tok_start: usize,
    },
    Char {
        start: usize,
        tok_start: usize,
    },
}

/// Lex `source` into tokens, comments, and the code mask.
pub fn lex(source: &str) -> Lexed {
    let bytes: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut tokens: Vec<Token> = Vec::new();
    let mut comments: Vec<Comment> = Vec::new();
    let mut comment_buf = String::new();
    let mut state = State::Code;
    let mut line = 1usize;
    let mut line_had_code = false;
    let mut i = 0usize;

    macro_rules! push_masked {
        ($c:expr) => {
            if $c == '\n' {
                out.push('\n');
            } else {
                out.push(' ');
            }
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    let doc = matches!(bytes.get(i + 2), Some('/') | Some('!'))
                        && bytes.get(i + 3) != Some(&'/'); // `////` separators are not docs
                    state = State::LineComment { start: line, doc };
                    comment_buf.clear();
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    let doc = matches!(bytes.get(i + 2), Some('*') | Some('!'))
                        && bytes.get(i + 3) != Some(&'/');
                    state = State::BlockComment {
                        depth: 1,
                        start: line,
                        doc,
                    };
                    comment_buf.clear();
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '"' => {
                    state = State::Str {
                        start: line,
                        tok_start: i,
                    };
                    out.push('"');
                    line_had_code = true;
                }
                'r' | 'b' if is_raw_string_start(&bytes, i) => {
                    let (consumed, hashes) = raw_string_open(&bytes, i);
                    for k in 0..consumed {
                        push_masked!(bytes[i + k]);
                    }
                    state = State::RawStr {
                        hashes,
                        start: line,
                        tok_start: i,
                    };
                    line_had_code = true;
                    i += consumed;
                    continue;
                }
                '\'' => {
                    // Lifetime (`'a`, `'static`, `'_`) vs char literal
                    // (`'a'`, `'\n'`): a quote followed by an identifier
                    // run is a lifetime unless a closing quote follows
                    // the single identifier character.
                    let is_lifetime = match (next, bytes.get(i + 2)) {
                        (Some(n), after) if n.is_alphanumeric() || n == '_' => after != Some(&'\''),
                        _ => false,
                    };
                    line_had_code = true;
                    if is_lifetime {
                        let mut j = i + 1;
                        while bytes
                            .get(j)
                            .is_some_and(|c| c.is_alphanumeric() || *c == '_')
                        {
                            j += 1;
                        }
                        let text: String = bytes[i..j].iter().collect();
                        out.push_str(&text);
                        tokens.push(Token {
                            kind: TokenKind::Lifetime,
                            text,
                            line,
                        });
                        i = j;
                        continue;
                    }
                    state = State::Char {
                        start: line,
                        tok_start: i,
                    };
                    out.push('\'');
                }
                '\n' => {
                    out.push('\n');
                    line += 1;
                    line_had_code = false;
                }
                c if c.is_alphabetic() || c == '_' => {
                    let mut j = i;
                    while bytes
                        .get(j)
                        .is_some_and(|c| c.is_alphanumeric() || *c == '_')
                    {
                        j += 1;
                    }
                    let text: String = bytes[i..j].iter().collect();
                    out.push_str(&text);
                    tokens.push(Token {
                        kind: TokenKind::Ident,
                        text,
                        line,
                    });
                    line_had_code = true;
                    i = j;
                    continue;
                }
                c if c.is_ascii_digit() => {
                    // A numeric run: covers `0xEDB8_8320`, `1_000u64`,
                    // `1e3`. A `.` splits (good enough for these lints).
                    let mut j = i;
                    while bytes
                        .get(j)
                        .is_some_and(|c| c.is_alphanumeric() || *c == '_')
                    {
                        j += 1;
                    }
                    let text: String = bytes[i..j].iter().collect();
                    out.push_str(&text);
                    tokens.push(Token {
                        kind: TokenKind::NumLit,
                        text,
                        line,
                    });
                    line_had_code = true;
                    i = j;
                    continue;
                }
                _ => {
                    out.push(c);
                    if !c.is_whitespace() {
                        tokens.push(Token {
                            kind: TokenKind::Punct,
                            text: c.to_string(),
                            line,
                        });
                        line_had_code = true;
                    }
                }
            },
            State::LineComment { start, doc } => {
                if c == '\n' {
                    comments.push(Comment {
                        line: start,
                        text: comment_buf.trim().to_string(),
                        is_doc: doc,
                        standalone: !line_had_code,
                    });
                    out.push('\n');
                    line += 1;
                    line_had_code = false;
                    state = State::Code;
                } else {
                    comment_buf.push(c);
                    out.push(' ');
                }
            }
            State::BlockComment {
                ref mut depth,
                start,
                doc,
            } => {
                // Rust block comments nest: `/* /* */ */` is one comment.
                if c == '/' && next == Some('*') {
                    *depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if c == '*' && next == Some('/') {
                    *depth -= 1;
                    if *depth == 0 {
                        comments.push(Comment {
                            line: start,
                            text: comment_buf.trim().to_string(),
                            is_doc: doc,
                            standalone: !line_had_code,
                        });
                        state = State::Code;
                    }
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                comment_buf.push(c);
                push_masked!(c);
                if c == '\n' {
                    line += 1;
                    line_had_code = false;
                }
            }
            State::Str { start, tok_start } => match c {
                '\\' => {
                    out.push(' ');
                    if let Some(n) = next {
                        push_masked!(n);
                        if n == '\n' {
                            line += 1;
                        }
                    }
                    i += 2;
                    continue;
                }
                '"' => {
                    out.push('"');
                    tokens.push(Token {
                        kind: TokenKind::StrLit,
                        text: bytes[tok_start..=i].iter().collect(),
                        line: start,
                    });
                    state = State::Code;
                }
                '\n' => {
                    out.push('\n');
                    line += 1;
                }
                _ => out.push(' '),
            },
            State::RawStr {
                hashes,
                start,
                tok_start,
            } => {
                if c == '"' && closes_raw_string(&bytes, i, hashes) {
                    for k in 0..=hashes {
                        push_masked!(bytes[i + k]);
                    }
                    tokens.push(Token {
                        kind: TokenKind::StrLit,
                        text: bytes[tok_start..=i + hashes].iter().collect(),
                        line: start,
                    });
                    state = State::Code;
                    i += hashes + 1;
                    continue;
                }
                push_masked!(c);
                if c == '\n' {
                    line += 1;
                }
            }
            State::Char { start, tok_start } => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                    }
                    i += 2;
                    continue;
                }
                '\'' => {
                    out.push('\'');
                    tokens.push(Token {
                        kind: TokenKind::CharLit,
                        text: bytes[tok_start..=i].iter().collect(),
                        line: start,
                    });
                    state = State::Code;
                }
                _ => out.push(' '),
            },
        }
        i += 1;
    }
    if let State::LineComment { start, doc } = state {
        comments.push(Comment {
            line: start,
            text: comment_buf.trim().to_string(),
            is_doc: doc,
            standalone: !line_had_code,
        });
    }
    Lexed {
        tokens,
        comments,
        mask: out,
    }
}

/// Is `i` the start of a raw/byte string (`r"`, `r#"`, `br"`, `b"`, …)?
///
/// An identifier character immediately before disqualifies the match:
/// `r`/`b` there is the tail of an identifier (`for`, `sub`), not a
/// string prefix.
fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    if i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&'r') {
        j += 1;
        while bytes.get(j) == Some(&'#') {
            j += 1;
        }
        return bytes.get(j) == Some(&'"');
    }
    // Plain byte string `b"…"`.
    bytes[i] == 'b' && bytes.get(j) == Some(&'"')
}

/// Length of the raw-string opener at `i` and its `#` count.
fn raw_string_open(bytes: &[char], i: usize) -> (usize, usize) {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&'r') {
        j += 1;
    }
    let mut hashes = 0;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    // j is at the quote
    (j + 1 - i, hashes)
}

/// Does the `"` at `i` close a raw string with `hashes` hashes?
fn closes_raw_string(bytes: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| bytes.get(i + k) == Some(&'#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn tokens_carry_kinds_and_lines() {
        let l = lex("fn f() {\n    x.call(42);\n}\n");
        let f = &l.tokens[1];
        assert!(f.is_ident("f"));
        assert_eq!(f.line, 1);
        let call = l.tokens.iter().find(|t| t.is_ident("call")).unwrap();
        assert_eq!(call.line, 2);
        let num = l
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::NumLit)
            .unwrap();
        assert_eq!(num.text, "42");
    }

    #[test]
    fn raw_strings_of_every_flavor_are_single_tokens() {
        for (src, lit) in [
            ("let s = r\"a//b\";", "r\"a//b\""),
            (
                "let s = r#\"has \"quotes\" inside\"#;",
                "r#\"has \"quotes\" inside\"#",
            ),
            ("let s = r##\"one \"# deep\"##;", "r##\"one \"# deep\"##"),
            ("let s = b\"bytes\";", "b\"bytes\""),
            ("let s = br#\"raw bytes\"#;", "br#\"raw bytes\"#"),
        ] {
            let l = lex(src);
            let strs: Vec<&Token> = l
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::StrLit)
                .collect();
            assert_eq!(strs.len(), 1, "{src}");
            assert_eq!(strs[0].text, lit, "{src}");
            // The mask must not leak the contents.
            assert!(!l.mask.contains("quotes"), "{src}");
            assert!(!l.mask.contains("bytes"), "{src}");
        }
    }

    #[test]
    fn raw_string_prefix_requires_a_token_boundary() {
        // `for` ends in `r`; the following string is a plain string, and
        // the identifier must survive as a token.
        let l = lex("for x in list { push(x, \"r\") }");
        assert!(l.tokens.iter().any(|t| t.is_ident("for")));
        assert!(l.mask.contains("for x in list"));
    }

    #[test]
    fn nested_block_comments_unwind_fully() {
        let l = lex("a /* outer /* inner */ still comment */ b\n");
        assert!(l.mask.contains('a'));
        assert!(l.mask.contains('b'));
        assert!(!l.mask.contains("inner"));
        assert!(!l.mask.contains("still"));
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner"));
        // Only `a` and `b` survive as tokens.
        assert_eq!(
            idents("a /* outer /* inner */ still comment */ b\n"),
            ["a", "b"]
        );
    }

    #[test]
    fn lifetimes_are_tokens_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str, y: &'static u8, z: &'_ u8) -> &'a str { x }");
        let lifetimes: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a", "'static", "'_", "'a"]);
        assert!(l.tokens.iter().all(|t| t.kind != TokenKind::CharLit));
    }

    #[test]
    fn char_literals_including_escapes_are_masked() {
        let l = lex("let a = 'x'; let q = '\\''; let s = '\\\\'; let u = '\\u{1F600}';");
        let chars: Vec<&Token> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::CharLit)
            .collect();
        assert_eq!(chars.len(), 4, "{:?}", l.tokens);
        assert!(!l.mask.contains('x'), "char contents must be masked");
        assert!(!l.mask.contains("1F600"));
    }

    #[test]
    fn hex_literals_lex_as_one_numeric_token() {
        let l = lex("const P: u32 = 0xEDB8_8320;");
        let num = l
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::NumLit)
            .unwrap();
        assert_eq!(num.text, "0xEDB8_8320");
    }

    #[test]
    fn string_escapes_do_not_end_the_literal() {
        let l = lex("let s = \"a\\\"b\"; let t = 1;");
        assert!(l.mask.contains("let t = 1;"));
        let lit = l
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::StrLit)
            .unwrap();
        assert_eq!(lit.text, "\"a\\\"b\"");
    }
}
