//! Comment/string-aware scanning of Rust source files.
//!
//! The audit deliberately avoids a full parser (the build environment has
//! no access to `syn`): every lint here operates on a *code mask* — the
//! original source with comments, string literals, and char literals
//! blanked out — plus side tables of comments and `#[cfg(test)]` module
//! spans. That is enough to make token-level lints (`.unwrap()`, `f64`,
//! indexing) immune to false positives from text inside strings or docs,
//! which is the failure mode of plain grep.

/// One comment found in a file (both `//`-family and `/* */`-family).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the comment's first character.
    pub line: usize,
    /// Comment text without the delimiters, trimmed.
    pub text: String,
    /// `true` for `///` and `//!` doc comments.
    pub is_doc: bool,
    /// `true` when the comment occupies its line alone (no code before it).
    pub standalone: bool,
}

/// An `// audit: allow(<lint>, <reason>)` escape-hatch annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line of the annotation comment.
    pub line: usize,
    /// 1-based line the annotation suppresses findings on.
    pub target_line: usize,
    /// Lint name the annotation allows (or `"all"`).
    pub lint: String,
    /// Free-form justification (required by the audit).
    pub reason: String,
    /// Set by the lint passes when a finding is actually suppressed.
    pub used: std::cell::Cell<bool>,
}

/// A scanned source file ready for linting.
pub struct ScannedFile {
    /// Repo-relative path, `/`-separated.
    pub path: String,
    /// The source with comment/string/char contents blanked to spaces
    /// (newlines preserved, so line/column arithmetic matches the source).
    pub code: String,
    /// Original source (for snippets in reports).
    pub source: String,
    /// All comments, in order.
    pub comments: Vec<Comment>,
    /// Escape-hatch annotations, in order.
    pub allows: Vec<Allow>,
    /// `in_test[line-1]` is `true` for lines inside `#[cfg(test)]` modules.
    pub in_test: Vec<bool>,
}

impl ScannedFile {
    /// Scan `source` (from `path`) into masked code + side tables.
    pub fn new(path: String, source: String) -> ScannedFile {
        let (code, comments) = mask(&source);
        let allows = extract_allows(&code, &comments);
        let in_test = test_spans(&code);
        ScannedFile {
            path,
            code,
            source,
            comments,
            allows,
            in_test,
        }
    }

    /// `true` if `line` (1-based) is inside a `#[cfg(test)]` module.
    pub fn line_in_test(&self, line: usize) -> bool {
        self.in_test.get(line - 1).copied().unwrap_or(false)
    }

    /// The original source line (1-based), trimmed, for report snippets.
    pub fn snippet(&self, line: usize) -> &str {
        self.source.lines().nth(line - 1).unwrap_or("").trim()
    }

    /// Look for an unused-or-used allow covering `line` for `lint`; marks
    /// it used and returns `true` when found.
    pub fn allowed(&self, line: usize, lint: &str) -> bool {
        for a in &self.allows {
            if a.target_line == line && (a.lint == lint || a.lint == "all") {
                a.used.set(true);
                return true;
            }
        }
        false
    }

    /// Doc-comment lines immediately above `line` (1-based), skipping
    /// attribute lines (`#[...]`), concatenated in source order.
    pub fn doc_above(&self, line: usize) -> String {
        let code_lines: Vec<&str> = self.code.lines().collect();
        let mut cursor = line - 1; // move to 0-based, then walk up
        let mut doc_lines: Vec<&str> = Vec::new();
        while cursor > 0 {
            cursor -= 1;
            let code_line = code_lines.get(cursor).copied().unwrap_or("").trim();
            let is_attr = code_line.starts_with("#[") || code_line.starts_with("#![");
            let is_blankish = code_line.is_empty();
            if is_attr {
                continue;
            }
            if !is_blankish {
                break;
            }
            // Blank in the mask: either a genuinely blank line (stop) or
            // a comment line. Doc comments accumulate; plain comments are
            // skipped without ending the walk.
            match self.comments.iter().find(|c| c.line == cursor + 1) {
                Some(c) if c.is_doc => doc_lines.push(&c.text),
                Some(_) => {}
                None => break,
            }
        }
        doc_lines.reverse();
        doc_lines.join("\n")
    }
}

/// States of the masking scanner.
enum State {
    Code,
    LineComment {
        start: usize,
        doc: bool,
    },
    BlockComment {
        depth: usize,
        start: usize,
        doc: bool,
    },
    Str,
    RawStr {
        hashes: usize,
    },
    Char,
}

/// Blank out comment/string/char contents; collect comments.
fn mask(source: &str) -> (String, Vec<Comment>) {
    let bytes: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut comments: Vec<Comment> = Vec::new();
    let mut comment_buf = String::new();
    let mut state = State::Code;
    let mut line = 1usize;
    let mut line_had_code = false;
    let mut i = 0usize;

    macro_rules! push_masked {
        ($c:expr) => {
            if $c == '\n' {
                out.push('\n');
            } else {
                out.push(' ');
            }
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    let doc = matches!(bytes.get(i + 2), Some('/') | Some('!'))
                        && bytes.get(i + 3) != Some(&'/'); // `////` separators are not docs
                    state = State::LineComment { start: line, doc };
                    comment_buf.clear();
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    let doc = matches!(bytes.get(i + 2), Some('*') | Some('!'))
                        && bytes.get(i + 3) != Some(&'/');
                    state = State::BlockComment {
                        depth: 1,
                        start: line,
                        doc,
                    };
                    comment_buf.clear();
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '"' => {
                    state = State::Str;
                    out.push('"');
                    line_had_code = true;
                }
                'r' | 'b' if is_raw_string_start(&bytes, i) => {
                    let (consumed, hashes) = raw_string_open(&bytes, i);
                    for k in 0..consumed {
                        push_masked!(bytes[i + k]);
                    }
                    state = State::RawStr { hashes };
                    line_had_code = true;
                    i += consumed;
                    continue;
                }
                '\'' => {
                    // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                    let is_lifetime = match (next, bytes.get(i + 2)) {
                        (Some(n), after) if n.is_alphanumeric() || n == '_' => after != Some(&'\''),
                        _ => false,
                    };
                    if is_lifetime {
                        out.push(c);
                        line_had_code = true;
                    } else {
                        state = State::Char;
                        out.push('\'');
                        line_had_code = true;
                    }
                }
                '\n' => {
                    out.push('\n');
                    line += 1;
                    line_had_code = false;
                }
                _ => {
                    out.push(c);
                    if !c.is_whitespace() {
                        line_had_code = true;
                    }
                }
            },
            State::LineComment { start, doc } => {
                if c == '\n' {
                    comments.push(Comment {
                        line: start,
                        text: comment_buf.trim().to_string(),
                        is_doc: doc,
                        standalone: !line_had_code,
                    });
                    out.push('\n');
                    line += 1;
                    line_had_code = false;
                    state = State::Code;
                } else {
                    comment_buf.push(c);
                    out.push(' ');
                }
            }
            State::BlockComment {
                ref mut depth,
                start,
                doc,
            } => {
                if c == '/' && next == Some('*') {
                    *depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if c == '*' && next == Some('/') {
                    *depth -= 1;
                    if *depth == 0 {
                        comments.push(Comment {
                            line: start,
                            text: comment_buf.trim().to_string(),
                            is_doc: doc,
                            standalone: !line_had_code,
                        });
                        state = State::Code;
                    }
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                comment_buf.push(c);
                push_masked!(c);
                if c == '\n' {
                    line += 1;
                    line_had_code = false;
                }
            }
            State::Str => match c {
                '\\' => {
                    out.push(' ');
                    if let Some(n) = next {
                        push_masked!(n);
                        if n == '\n' {
                            line += 1;
                        }
                    }
                    i += 2;
                    continue;
                }
                '"' => {
                    out.push('"');
                    state = State::Code;
                }
                '\n' => {
                    out.push('\n');
                    line += 1;
                }
                _ => out.push(' '),
            },
            State::RawStr { hashes } => {
                if c == '"' && closes_raw_string(&bytes, i, hashes) {
                    for k in 0..=hashes {
                        push_masked!(bytes[i + k]);
                    }
                    state = State::Code;
                    i += hashes + 1;
                    continue;
                }
                push_masked!(c);
                if c == '\n' {
                    line += 1;
                }
            }
            State::Char => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                    }
                    i += 2;
                    continue;
                }
                '\'' => {
                    out.push('\'');
                    state = State::Code;
                }
                _ => out.push(' '),
            },
        }
        i += 1;
    }
    if let State::LineComment { start, doc } = state {
        comments.push(Comment {
            line: start,
            text: comment_buf.trim().to_string(),
            is_doc: doc,
            standalone: !line_had_code,
        });
    }
    (out, comments)
}

/// Is `i` the start of a raw/byte string (`r"`, `r#"`, `br"`, `b"`, ...)?
fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&'r') {
        j += 1;
        while bytes.get(j) == Some(&'#') {
            j += 1;
        }
        return bytes.get(j) == Some(&'"');
    }
    // Plain byte string b"..."; treat like a normal string start only if
    // the previous char is not an identifier char (avoid matching `rb` in
    // an identifier like `verb"`... identifiers can't contain quotes, but
    // `b` could end an identifier like `sub`).
    bytes[i] == 'b'
        && bytes.get(j) == Some(&'"')
        && (i == 0 || !(bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_'))
}

/// Length of the raw-string opener at `i` and its `#` count.
fn raw_string_open(bytes: &[char], i: usize) -> (usize, usize) {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&'r') {
        j += 1;
    }
    let mut hashes = 0;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    // j is at the quote
    (j + 1 - i, hashes)
}

/// Does the `"` at `i` close a raw string with `hashes` hashes?
fn closes_raw_string(bytes: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// Parse `audit: allow(<lint>, <reason>)` annotations out of comments and
/// bind each to the line it suppresses: its own line for trailing
/// comments, the next line containing code for standalone ones.
fn extract_allows(code: &str, comments: &[Comment]) -> Vec<Allow> {
    let code_lines: Vec<&str> = code.lines().collect();
    let mut allows = Vec::new();
    for c in comments {
        let Some(rest) = c.text.trim().strip_prefix("audit: allow(") else {
            continue;
        };
        let Some(inner) = rest.rfind(')').map(|end| &rest[..end]) else {
            continue;
        };
        let (lint, reason) = match inner.split_once(',') {
            Some((l, r)) => (l.trim().to_string(), r.trim().to_string()),
            None => (inner.trim().to_string(), String::new()),
        };
        let target_line = if c.standalone {
            // First later line with real code.
            (c.line..=code_lines.len())
                .find(|&l| {
                    code_lines
                        .get(l) // l is 1-based ⇒ this is the NEXT line
                        .is_some_and(|s| !s.trim().is_empty())
                })
                .map(|l| l + 1)
                .unwrap_or(c.line)
        } else {
            c.line
        };
        allows.push(Allow {
            line: c.line,
            target_line,
            lint,
            reason,
            used: std::cell::Cell::new(false),
        });
    }
    allows
}

/// Mark lines belonging to `#[cfg(test)] mod … { … }` spans (brace-matched
/// on the masked code, so braces in strings/comments don't confuse it).
fn test_spans(code: &str) -> Vec<bool> {
    let n_lines = code.lines().count();
    let mut in_test = vec![false; n_lines];
    let chars: Vec<char> = code.chars().collect();
    let mut line_of = Vec::with_capacity(chars.len());
    let mut line = 0usize;
    for &c in &chars {
        line_of.push(line);
        if c == '\n' {
            line += 1;
        }
    }
    let text: String = chars.iter().collect();
    let mut search_from = 0usize;
    while let Some(found) = text[search_from..].find("#[cfg(test)]") {
        let attr_at = search_from + found;
        // Find the opening brace of the following item (mod or fn).
        let Some(open_rel) = text[attr_at..].find('{') else {
            break;
        };
        let open = attr_at + open_rel;
        let mut depth = 0i64;
        let mut close = open;
        for (k, c) in text[open..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = open + k;
                        break;
                    }
                }
                _ => {}
            }
        }
        let (l0, l1) = (
            line_of[attr_at.min(line_of.len() - 1)],
            line_of[close.min(line_of.len() - 1)],
        );
        for flag in in_test.iter_mut().take(l1 + 1).skip(l0) {
            *flag = true;
        }
        search_from = close.max(attr_at + 1);
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> ScannedFile {
        ScannedFile::new("test.rs".into(), src.to_string())
    }

    #[test]
    fn strings_and_comments_are_masked() {
        let f = scan("let x = \"unwrap() f64\"; // .unwrap() here\nlet y = 1;\n");
        assert!(!f.code.contains("unwrap"));
        assert!(!f.code.contains("f64"));
        assert!(f.code.contains("let y = 1;"));
        assert_eq!(f.comments.len(), 1);
        assert!(f.comments[0].text.contains(".unwrap() here"));
    }

    #[test]
    fn raw_strings_are_masked() {
        let f = scan("let s = r#\"panic!(\"x\")\"#; let t = 2;\n");
        assert!(!f.code.contains("panic"));
        assert!(f.code.contains("let t = 2;"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = scan("fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';\n");
        assert!(f.code.contains("fn f<'a>(x: &'a str)"));
        assert!(!f.code.contains("'x'"));
    }

    #[test]
    fn allow_trailing_binds_to_its_line() {
        let f = scan("let a = v.unwrap(); // audit: allow(unwrap, length checked above)\n");
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].target_line, 1);
        assert_eq!(f.allows[0].lint, "unwrap");
        assert!(f.allows[0].reason.contains("length checked"));
        assert!(f.allowed(1, "unwrap"));
        assert!(!f.allowed(1, "panic"));
    }

    #[test]
    fn allow_standalone_binds_to_next_code_line() {
        let f =
            scan("// audit: allow(index, i < len by construction)\nlet a = v[i];\nlet b = 2;\n");
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].target_line, 2);
        assert!(f.allowed(2, "index"));
        assert!(!f.allowed(3, "index"));
    }

    #[test]
    fn cfg_test_mods_are_marked() {
        let src = "pub fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { v.unwrap(); }\n}\npub fn after() {}\n";
        let f = scan(src);
        assert!(!f.line_in_test(1));
        assert!(f.line_in_test(3));
        assert!(f.line_in_test(4));
        assert!(f.line_in_test(5));
        assert!(!f.line_in_test(6));
    }

    #[test]
    fn doc_above_collects_contiguous_docs() {
        let src =
            "/// Needs a concave input.\n/// Second line.\n#[inline]\npub fn f(c: &Curve) {}\n";
        let f = scan(src);
        let doc = f.doc_above(4);
        assert!(doc.contains("concave"));
        assert!(doc.contains("Second line"));
    }
}
