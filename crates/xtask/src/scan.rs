//! Comment/string-aware scanning of Rust source files.
//!
//! The audit deliberately avoids a full parser (the build environment has
//! no access to `syn`): every lint here operates on the [`lexer`]'s
//! output — a token stream plus a *code mask* (the original source with
//! comments, string literals, and char literals blanked out) and side
//! tables of comments and `#[cfg(test)]` module spans. That is enough to
//! make token-level lints (`.unwrap()`, `f64`, indexing) immune to false
//! positives from text inside strings or docs, which is the failure mode
//! of plain grep, and enough for the deepcheck passes to build a
//! cross-file symbol index on top.
//!
//! [`lexer`]: crate::lexer

use crate::lexer::{self, Token};

pub use crate::lexer::Comment;

/// An `// audit: allow(<lint>, <reason>)` escape-hatch annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line of the annotation comment.
    pub line: usize,
    /// 1-based line the annotation suppresses findings on.
    pub target_line: usize,
    /// Lint name the annotation allows (or `"all"`).
    pub lint: String,
    /// Free-form justification (required by the audit).
    pub reason: String,
    /// Set by the lint passes when a finding is actually suppressed.
    pub used: std::cell::Cell<bool>,
}

/// A scanned source file ready for linting.
pub struct ScannedFile {
    /// Repo-relative path, `/`-separated.
    pub path: String,
    /// The source with comment/string/char contents blanked to spaces
    /// (newlines preserved, so line/column arithmetic matches the source).
    pub code: String,
    /// Original source (for snippets in reports).
    pub source: String,
    /// The token stream (see [`crate::lexer`]).
    pub tokens: Vec<Token>,
    /// All comments, in order.
    pub comments: Vec<Comment>,
    /// Escape-hatch annotations, in order.
    pub allows: Vec<Allow>,
    /// `in_test[line-1]` is `true` for lines inside `#[cfg(test)]` modules.
    pub in_test: Vec<bool>,
    /// Byte offset of each line's first character in `source`
    /// (`line_starts[0] == 0`), built once so [`ScannedFile::snippet`]
    /// is O(line length) instead of re-splitting the whole file.
    line_starts: Vec<usize>,
}

impl ScannedFile {
    /// Scan `source` (from `path`) into tokens, masked code, and side
    /// tables.
    pub fn new(path: String, source: String) -> ScannedFile {
        let lexer::Lexed {
            tokens,
            comments,
            mask: code,
        } = lexer::lex(&source);
        let allows = extract_allows(&code, &comments);
        let in_test = test_spans(&code);
        let mut line_starts = vec![0usize];
        line_starts.extend(
            source
                .bytes()
                .enumerate()
                .filter(|&(_, b)| b == b'\n')
                .map(|(at, _)| at + 1),
        );
        ScannedFile {
            path,
            code,
            source,
            tokens,
            comments,
            allows,
            in_test,
            line_starts,
        }
    }

    /// `true` if `line` (1-based) is inside a `#[cfg(test)]` module.
    pub fn line_in_test(&self, line: usize) -> bool {
        self.in_test.get(line - 1).copied().unwrap_or(false)
    }

    /// The original source line (1-based), trimmed, for report snippets.
    /// O(line length) via the precomputed line-offset index.
    pub fn snippet(&self, line: usize) -> &str {
        let Some(&start) = self.line_starts.get(line - 1) else {
            return "";
        };
        let end = self
            .line_starts
            .get(line)
            .map_or(self.source.len(), |&next| next);
        self.source.get(start..end).unwrap_or("").trim()
    }

    /// Look for an allow covering `line` for `lint` — including blanket
    /// `allow(all, …)` annotations; marks it used and returns `true`
    /// when found.
    pub fn allowed(&self, line: usize, lint: &str) -> bool {
        self.allow_lookup(line, lint, true)
    }

    /// Like [`ScannedFile::allowed`], but blanket `all` annotations do
    /// not apply: the deepcheck families require naming the lint (see
    /// DESIGN, escape-hatch policy).
    pub fn allowed_named(&self, line: usize, lint: &str) -> bool {
        self.allow_lookup(line, lint, false)
    }

    fn allow_lookup(&self, line: usize, lint: &str, blanket: bool) -> bool {
        for a in &self.allows {
            if a.target_line == line && (a.lint == lint || (blanket && a.lint == "all")) {
                a.used.set(true);
                return true;
            }
        }
        false
    }

    /// Doc-comment lines immediately above `line` (1-based), skipping
    /// attribute lines (`#[...]`), concatenated in source order.
    pub fn doc_above(&self, line: usize) -> String {
        let code_lines: Vec<&str> = self.code.lines().collect();
        let mut cursor = line - 1; // move to 0-based, then walk up
        let mut doc_lines: Vec<&str> = Vec::new();
        while cursor > 0 {
            cursor -= 1;
            let code_line = code_lines.get(cursor).copied().unwrap_or("").trim();
            let is_attr = code_line.starts_with("#[") || code_line.starts_with("#![");
            let is_blankish = code_line.is_empty();
            if is_attr {
                continue;
            }
            if !is_blankish {
                break;
            }
            // Blank in the mask: either a genuinely blank line (stop) or
            // a comment line. Doc comments accumulate; plain comments are
            // skipped without ending the walk.
            match self.comments.iter().find(|c| c.line == cursor + 1) {
                Some(c) if c.is_doc => doc_lines.push(&c.text),
                Some(_) => {}
                None => break,
            }
        }
        doc_lines.reverse();
        doc_lines.join("\n")
    }
}

/// Parse `audit: allow(<lint>, <reason>)` annotations out of comments and
/// bind each to the line it suppresses: its own line for trailing
/// comments, the next line containing code for standalone ones.
fn extract_allows(code: &str, comments: &[Comment]) -> Vec<Allow> {
    let code_lines: Vec<&str> = code.lines().collect();
    let mut allows = Vec::new();
    for c in comments {
        let Some(rest) = c.text.trim().strip_prefix("audit: allow(") else {
            continue;
        };
        let Some(inner) = rest.rfind(')').map(|end| &rest[..end]) else {
            continue;
        };
        let (lint, reason) = match inner.split_once(',') {
            Some((l, r)) => (l.trim().to_string(), r.trim().to_string()),
            None => (inner.trim().to_string(), String::new()),
        };
        let target_line = if c.standalone {
            // First later line with real code.
            (c.line..=code_lines.len())
                .find(|&l| {
                    code_lines
                        .get(l) // l is 1-based ⇒ this is the NEXT line
                        .is_some_and(|s| !s.trim().is_empty())
                })
                .map(|l| l + 1)
                .unwrap_or(c.line)
        } else {
            c.line
        };
        allows.push(Allow {
            line: c.line,
            target_line,
            lint,
            reason,
            used: std::cell::Cell::new(false),
        });
    }
    allows
}

/// Mark lines belonging to `#[cfg(test)] mod … { … }` spans (brace-matched
/// on the masked code, so braces in strings/comments don't confuse it).
fn test_spans(code: &str) -> Vec<bool> {
    let n_lines = code.lines().count();
    let mut in_test = vec![false; n_lines];
    let chars: Vec<char> = code.chars().collect();
    let mut line_of = Vec::with_capacity(chars.len());
    let mut line = 0usize;
    for &c in &chars {
        line_of.push(line);
        if c == '\n' {
            line += 1;
        }
    }
    let text: String = chars.iter().collect();
    let mut search_from = 0usize;
    while let Some(found) = text[search_from..].find("#[cfg(test)]") {
        let attr_at = search_from + found;
        // Find the opening brace of the following item (mod or fn).
        let Some(open_rel) = text[attr_at..].find('{') else {
            break;
        };
        let open = attr_at + open_rel;
        let mut depth = 0i64;
        let mut close = open;
        for (k, c) in text[open..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = open + k;
                        break;
                    }
                }
                _ => {}
            }
        }
        let (l0, l1) = (
            line_of[attr_at.min(line_of.len() - 1)],
            line_of[close.min(line_of.len() - 1)],
        );
        for flag in in_test.iter_mut().take(l1 + 1).skip(l0) {
            *flag = true;
        }
        search_from = close.max(attr_at + 1);
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> ScannedFile {
        ScannedFile::new("test.rs".into(), src.to_string())
    }

    #[test]
    fn strings_and_comments_are_masked() {
        let f = scan("let x = \"unwrap() f64\"; // .unwrap() here\nlet y = 1;\n");
        assert!(!f.code.contains("unwrap"));
        assert!(!f.code.contains("f64"));
        assert!(f.code.contains("let y = 1;"));
        assert_eq!(f.comments.len(), 1);
        assert!(f.comments[0].text.contains(".unwrap() here"));
    }

    #[test]
    fn raw_strings_are_masked() {
        let f = scan("let s = r#\"panic!(\"x\")\"#; let t = 2;\n");
        assert!(!f.code.contains("panic"));
        assert!(f.code.contains("let t = 2;"));
    }

    #[test]
    fn raw_strings_with_embedded_comment_markers_stay_strings() {
        // `//` and `/*` inside a raw string must not open a comment: the
        // code after the literal still gets linted.
        let f = scan("let s = r#\"// not /* a comment\"#; let live = 3;\n");
        assert!(f.code.contains("let live = 3;"));
        assert!(!f.code.contains("not"));
        assert!(f.comments.is_empty());
    }

    #[test]
    fn nested_block_comments_are_one_comment() {
        let f = scan("let a = 1; /* outer /* inner */ tail */ let b = 2;\n");
        assert!(f.code.contains("let a = 1;"));
        assert!(f.code.contains("let b = 2;"));
        assert!(!f.code.contains("tail"));
        assert_eq!(f.comments.len(), 1);
        assert!(f.comments[0].text.contains("inner"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = scan("fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';\n");
        assert!(f.code.contains("fn f<'a>(x: &'a str)"));
        assert!(!f.code.contains("'x'"));
    }

    #[test]
    fn static_and_anonymous_lifetimes_survive_masking() {
        let f = scan("fn f(x: &'static str, y: &'_ u8) { g::<'static>(x, y) }\n");
        assert!(f.code.contains("&'static str"));
        assert!(f.code.contains("&'_ u8"));
    }

    #[test]
    fn ident_ending_in_r_before_string_is_not_a_raw_string() {
        let f = scan("for x in v { h(\"lit\") }\nlet after = 1;\n");
        assert!(f.code.contains("for x in v"));
        assert!(f.code.contains("let after = 1;"));
    }

    #[test]
    fn snippet_uses_the_line_offset_index() {
        let f = scan("first line\n  second line  \nthird\n");
        assert_eq!(f.snippet(1), "first line");
        assert_eq!(f.snippet(2), "second line");
        assert_eq!(f.snippet(3), "third");
        assert_eq!(f.snippet(4), "");
        assert_eq!(f.snippet(99), "");
    }

    #[test]
    fn snippet_of_last_line_without_trailing_newline() {
        let f = scan("only line, no newline");
        assert_eq!(f.snippet(1), "only line, no newline");
    }

    #[test]
    fn allow_trailing_binds_to_its_line() {
        let f = scan("let a = v.unwrap(); // audit: allow(unwrap, length checked above)\n");
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].target_line, 1);
        assert_eq!(f.allows[0].lint, "unwrap");
        assert!(f.allows[0].reason.contains("length checked"));
        assert!(f.allowed(1, "unwrap"));
        assert!(!f.allowed(1, "panic"));
    }

    #[test]
    fn allow_standalone_binds_to_next_code_line() {
        let f =
            scan("// audit: allow(index, i < len by construction)\nlet a = v[i];\nlet b = 2;\n");
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].target_line, 2);
        assert!(f.allowed(2, "index"));
        assert!(!f.allowed(3, "index"));
    }

    #[test]
    fn named_lookup_ignores_blanket_all_allows() {
        let f = scan("do_thing(); // audit: allow(all, blanket)\n");
        assert!(f.allowed(1, "unwrap"), "blanket applies to audit lookup");
        assert!(
            !f.allowed_named(1, "det-hash-iter"),
            "blanket must not satisfy a named-only lookup"
        );
        assert!(f.allowed_named(1, "all"), "exact name still matches");
    }

    #[test]
    fn cfg_test_mods_are_marked() {
        let src = "pub fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { v.unwrap(); }\n}\npub fn after() {}\n";
        let f = scan(src);
        assert!(!f.line_in_test(1));
        assert!(f.line_in_test(3));
        assert!(f.line_in_test(4));
        assert!(f.line_in_test(5));
        assert!(!f.line_in_test(6));
    }

    #[test]
    fn doc_above_collects_contiguous_docs() {
        let src =
            "/// Needs a concave input.\n/// Second line.\n#[inline]\npub fn f(c: &Curve) {}\n";
        let f = scan(src);
        let doc = f.doc_above(4);
        assert!(doc.contains("concave"));
        assert!(doc.contains("Second line"));
    }
}
