//! `cargo xtask bench` — the perf-trajectory recorder.
//!
//! Thin flag-parsing shell over [`dnc_bench::runner::run_bench`]: one
//! command runs the throughput, profile, chaos, and churn harnesses
//! with pinned seeds, archives their raw metrics under
//! `results/runs/<sha>-<ts>/`, appends one `dnc-bench/v1` record to
//! each of `BENCH_throughput.json` / `BENCH_churn.json`, and maps the
//! outcome onto the workspace exit table: harness soundness failures
//! exit [`exit::VIOLATION`]; with `--gate`, an out-of-band metric
//! exits [`exit::REGRESSION`].

use dnc_bench::exit;
use dnc_bench::runner::{run_bench, BenchOptions};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: cargo xtask bench [--quick] [--seed N] [--out-dir DIR] \
[--bench-dir DIR] [--gate] [--window K] [--threshold PCT] [--dashboard DIR]";

fn as_exit(code: i32) -> ExitCode {
    ExitCode::from(code as u8)
}

/// Parse flags and run one recorded bench pass.
pub fn bench_cmd(flags: &[String]) -> ExitCode {
    let mut opts = BenchOptions::default();
    let mut gate_enforced = false;
    let mut i = 0;
    while i < flags.len() {
        let flag = flags[i].as_str();
        let mut value = |name: &str| -> Option<String> {
            i += 1;
            let v = flags.get(i).cloned();
            if v.is_none() {
                eprintln!("xtask bench: {name} needs a value\n{USAGE}");
            }
            v
        };
        match flag {
            "--quick" => opts.quick = true,
            "--gate" => gate_enforced = true,
            "--seed" => match value("--seed").and_then(|v| v.parse().ok()) {
                Some(n) => opts.seed = n,
                None => return as_exit(exit::USAGE),
            },
            "--window" => match value("--window").and_then(|v| v.parse().ok()) {
                Some(n) => opts.gate.window = n,
                None => return as_exit(exit::USAGE),
            },
            "--threshold" => match value("--threshold").and_then(|v| v.parse().ok()) {
                Some(n) => opts.gate.threshold_pct = n,
                None => return as_exit(exit::USAGE),
            },
            "--out-dir" => match value("--out-dir") {
                Some(dir) => opts.out_dir = PathBuf::from(dir),
                None => return as_exit(exit::USAGE),
            },
            "--bench-dir" => match value("--bench-dir") {
                Some(dir) => opts.bench_dir = PathBuf::from(dir),
                None => return as_exit(exit::USAGE),
            },
            "--dashboard" => match value("--dashboard") {
                Some(dir) => opts.dashboard = Some(PathBuf::from(dir)),
                None => return as_exit(exit::USAGE),
            },
            other => {
                eprintln!("xtask bench: unknown flag `{other}`\n{USAGE}");
                return as_exit(exit::USAGE);
            }
        }
        i += 1;
    }

    match run_bench(&opts) {
        Ok(summary) => {
            print!("{}", summary.text);
            if !summary.sound() {
                eprintln!("xtask bench: harness soundness failure");
                as_exit(exit::VIOLATION)
            } else if gate_enforced && summary.regressed() {
                eprintln!("xtask bench: regression gate tripped");
                as_exit(exit::REGRESSION)
            } else {
                as_exit(exit::OK)
            }
        }
        Err(e) => {
            eprintln!("xtask bench: {e}");
            as_exit(exit::USAGE)
        }
    }
}
