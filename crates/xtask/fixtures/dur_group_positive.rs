// deepcheck fixture — scanned as crates/service/src/fixture.rs. Seeded
// true positives for `dur-group-ack`: reply lines leave through the ack
// sink before any journal commit dominates them — once with the sink as
// the first call in the function (the append lands too late), and once
// behind a helper that never reaches a commit primitive.

pub fn drain_eagerly(j: &mut Journal, deliveries: Vec<(Sender, String)>) {
    send_acks(deliveries);
    j.append_batch(&[]).ok();
}

pub fn ack_after_bookkeeping(deliveries: Vec<(Sender, String)>) {
    note_backlog(deliveries.len());
    send_acks(deliveries);
}

fn note_backlog(_n: usize) {}
