// deepcheck fixture — scanned as crates/service/src/fixture.rs. Seeded
// true positives: a journal write with no fsync before returning, an
// acknowledgement constructed before the WAL append, and framing
// constants duplicated outside the journal module.

const LOCAL_MAGIC: &[u8; 6] = b"DNCJ1\n";

pub fn crc_step(x: u32) -> u32 {
    (x >> 1) ^ 0xEDB8_8320
}

pub fn persist(f: &mut std::fs::File, buf: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    f.write_all(buf)
}

pub fn admit(j: &mut Journal, op: AdmitOp) -> Response {
    let resp = Response::Admitted { index: 0 };
    j.append(&op).ok();
    resp
}
