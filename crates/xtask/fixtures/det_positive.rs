// deepcheck fixture — scanned as crates/fixture/src/report.rs (an emit
// root), so every function here is on an emit path. Seeded true
// positives: two hash-order iterations and one wall-clock read.
use std::collections::HashMap;
use std::time::Instant;

pub fn render(m: &HashMap<String, u32>) -> String {
    let mut out = String::new();
    for (k, _v) in m.iter() {
        out.push_str(k);
    }
    out
}

pub fn dump(tags: &HashMap<u32, String>) {
    for t in tags {
        let _ = t;
    }
}

pub fn footer() -> u64 {
    let t0 = Instant::now();
    t0.elapsed().as_micros() as u64
}
