// deepcheck fixture — scanned as crates/service/src/fixture.rs. Known
// false-positive shapes for `dur-group-ack` that must stay clean: an
// ack sink dominated by a direct batch append, one dominated
// transitively through helpers that reach the fsync primitive, and the
// sink's own definition (a definition is not a call site).

pub fn flush_direct(j: &mut Journal, deliveries: Vec<(Sender, String)>) {
    j.append_batch(&[]).ok();
    send_acks(deliveries);
}

pub fn flush_via_helper(deliveries: Vec<(Sender, String)>) {
    commit_pending();
    send_acks(deliveries);
}

fn commit_pending() {
    fsync_now();
}

fn fsync_now() {
    journal_file().sync_data().ok();
}

pub fn send_acks(deliveries: Vec<(Sender, String)>) {
    for (tx, line) in deliveries {
        let _ = tx.send(line);
    }
}
