// deepcheck fixture — scanned as crates/fixture/src/bin/tool.rs. Known
// false-positive shapes that must stay clean: exit codes drawn from the
// unified table, a span guard held in a named binding, a span passed as
// an expression argument, and a struct field annotation `code: i32`.

struct CliError {
    code: i32,
    message: String,
}

fn main() {
    std::process::exit(dnc_bench::exit::USAGE);
}

fn run() -> CliError {
    let _g = dnc_telemetry::span("tool.phase");
    record(dnc_telemetry::span("tool.inner"));
    CliError {
        code: dnc_bench::exit::VIOLATION,
        message: String::new(),
    }
}
