// deepcheck fixture — scanned as crates/fixture/src/sweep.rs, which is
// NOT an emit root and is called by nothing: hash iteration and
// wall-clock reads off the emit paths are allowed (e.g. internal
// work-distribution order that a later stage sorts).
use std::collections::HashMap;
use std::time::Instant;

fn shuffle_work(m: &HashMap<u32, u32>) -> u64 {
    let mut acc = 0u64;
    for v in m.values() {
        acc += u64::from(*v);
    }
    let t0 = Instant::now();
    acc + t0.elapsed().as_nanos() as u64
}
