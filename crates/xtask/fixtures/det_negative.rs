// deepcheck fixture — scanned as crates/fixture/src/report.rs. Known
// false-positive shapes that must stay clean: ordered-collection
// iteration, hash *lookups* (deterministic), a hash-map mutation that
// never observes order, and iteration over a Vec that merely shares a
// method name.
use std::collections::{BTreeMap, HashMap};

pub fn render(b: &BTreeMap<u32, u32>, m: &HashMap<u32, u32>) -> u32 {
    let mut acc = 0;
    for (k, v) in b.iter() {
        acc += v + m.get(k).copied().unwrap_or(0);
    }
    acc
}

pub fn update(m: &mut HashMap<u32, u32>, k: u32) {
    m.insert(k, m.len() as u32);
    if m.contains_key(&k) {
        m.remove(&k);
    }
}

pub fn sum(rows: &[u32]) -> u32 {
    let mut acc = 0;
    for r in rows.iter() {
        acc += r;
    }
    acc
}
