// deepcheck fixture — scanned as crates/fixture/src/sharded.rs. Seeded
// true positives: a fan_out job whose helper re-enters the limits
// thread-local stack, an inline job touching a thread-local static, and
// a panic_any with a non-BudgetBreach payload.

pub fn run_shards(n: usize) {
    let job = |k: usize| {
        per_shard(k);
    };
    fan_out(n, 4, &job);
}

fn per_shard(k: usize) {
    let _guard = limits::install(None);
    let _ = k;
}

pub fn run_scratch(n: usize) {
    fan_out(n, 4, &|k: usize| SCRATCH.with(|s| s.set(k)));
}

pub fn bail(msg: String) {
    std::panic::panic_any(msg);
}
