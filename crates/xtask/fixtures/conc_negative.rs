// deepcheck fixture — scanned as crates/fixture/src/sharded.rs. Known
// false-positive shapes that must stay clean: a fan_out job doing plain
// compute (checkpoint probes are sanctioned and create no edge to the
// limits machinery here), a limits::install in a function the job never
// reaches, and panic_any payloads that are visibly BudgetBreach.

pub fn run_shards(n: usize) {
    let job = |k: usize| {
        compute(k);
    };
    fan_out(n, 4, &job);
}

fn compute(k: usize) -> usize {
    k.wrapping_mul(3)
}

pub fn outside_the_jobs() {
    let _guard = limits::install(None);
}

pub fn rethrow(b: BudgetBreach) {
    std::panic::panic_any(b);
}

pub fn rethrow_checked() {
    if let Some(b) = breach() {
        let breach: BudgetBreach = b;
        std::panic::panic_any(breach);
    }
}
