// deepcheck fixture — scanned as crates/service/src/fixture.rs. Known
// false-positive shapes that must stay clean: write followed by fsync,
// append-before-ack in order, an ack *matcher* with no append at all
// (not a commit path), and a rejection constructed before any append
// (rejections are not committed acknowledgements).

pub fn persist(f: &mut std::fs::File, buf: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    f.write_all(buf)?;
    f.sync_data()
}

pub fn admit(j: &mut Journal, op: AdmitOp) -> Response {
    j.append(&op).ok();
    Response::Admitted { index: 0 }
}

pub fn committed(r: &Response) -> bool {
    matches!(r, Response::Admitted { .. } | Response::Released { .. })
}
