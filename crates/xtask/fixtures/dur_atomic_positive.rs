// deepcheck fixture — scanned as crates/service/src/fixture.rs. Seeded
// true positive for dur-atomic-publish: the publish site stages the
// snapshot (temp write, data fsync, rename) but never fsyncs the
// parent directory, so a crash after the rename can lose the directory
// entry and recovery falls back past the compacted prefix.

pub fn publish_snapshot(
    fs: &dyn StorageFs,
    tmp: &std::path::Path,
    dst: &std::path::Path,
    buf: &[u8],
) -> std::io::Result<()> {
    let mut file = open_staging(tmp)?;
    fs.write(&mut file, buf)?;
    fs.sync_data(&file)?;
    fs.rename(tmp, dst)?;
    Ok(())
}

fn open_staging(tmp: &std::path::Path) -> std::io::Result<std::fs::File> {
    std::fs::File::create(tmp)
}
