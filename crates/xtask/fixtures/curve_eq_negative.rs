// deepcheck fixture — scanned as crates/fixture/src/delta.rs. Known
// false-positive shapes that must stay clean: canonical `Curve` and
// `CurveId` equality, iterating `.points()` without comparing the
// slices, and slice comparisons on non-curve accessors.

pub fn same_curve(a: &Curve, b: &Curve) -> bool {
    a == b
}

pub fn same_id(a: CurveId, b: CurveId) -> bool {
    a == b
}

pub fn breakpoint_count(c: &Curve) -> usize {
    c.points().len()
}

pub fn first_matches(c: &Curve, p: &Point) -> bool {
    c.points().first() == Some(p)
}

pub fn labels_equal(a: &Report, b: &Report) -> bool {
    a.labels() == b.labels()
}
