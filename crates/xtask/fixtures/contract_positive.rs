// deepcheck fixture — scanned as crates/fixture/src/bin/tool.rs. Seeded
// true positives: bare exit-code literals through all three shapes, a
// telemetry span opened in statement position, and one bound to `_`.

fn main() {
    if parse_failed() {
        std::process::exit(2);
    }
    let _code = std::process::ExitCode::from(3);
    let err = CliError {
        code: 1,
        message: String::new(),
    };
    dnc_telemetry::span("tool.phase");
    let _ = dnc_telemetry::span("tool.other");
    let _err = err;
}
