// deepcheck fixture — scanned as crates/service/src/fixture.rs. Clean
// shapes for dur-atomic-publish: the publish site reaches all four
// protocol stages, with the parent-directory fsync satisfied
// transitively through a helper to exercise the call-graph walk.

pub fn publish_snapshot(
    fs: &dyn StorageFs,
    tmp: &std::path::Path,
    dst: &std::path::Path,
    buf: &[u8],
) -> std::io::Result<()> {
    let mut file = open_staging(tmp)?;
    fs.write(&mut file, buf)?;
    fs.sync_data(&file)?;
    fs.rename(tmp, dst)?;
    durable_parent(fs, dst)?;
    Ok(())
}

fn durable_parent(fs: &dyn StorageFs, path: &std::path::Path) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or(std::path::Path::new("."));
    fs.sync_dir(dir)
}

fn open_staging(tmp: &std::path::Path) -> std::io::Result<std::fs::File> {
    std::fs::File::create(tmp)
}
