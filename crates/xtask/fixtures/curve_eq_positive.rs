// deepcheck fixture — scanned as crates/fixture/src/delta.rs. Seeded
// true positives: curves compared segment-by-segment through their
// `.points()` slices, with the call on the left operand, the right
// operand (behind a field chain), and an inequality.

pub fn same_shape(a: &Curve, b: &Curve) -> bool {
    a.points() == b.points()
}

pub fn matches_expected(&self, got: &Curve) -> bool {
    got == self.expected.points()
}

pub fn changed(prev: &Curve, next: &Curve) -> bool {
    prev.points() != next.points()
}
