//! The [`Rat`] type: a reduced `i128` fraction with total order and exact
//! field arithmetic.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// Arithmetic errors surfaced by the fallible [`Rat`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumError {
    /// An intermediate or final value left the `i128`-reduced-fraction range.
    Overflow,
    /// Division by zero (or `recip` of zero).
    DivisionByZero,
}

impl fmt::Display for NumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumError::Overflow => write!(f, "rational overflow (value outside i128 range)"),
            NumError::DivisionByZero => write!(f, "rational division by zero"),
        }
    }
}

impl std::error::Error for NumError {}

/// Greatest common divisor of two `i128`s (always non-negative; `gcd(0,0)=0`).
pub fn gcd_i128(mut a: i128, mut b: i128) -> i128 {
    a = a.unsigned_abs() as i128;
    b = b.unsigned_abs() as i128;
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// An exact rational number.
///
/// Invariants: `den > 0` and `gcd(num, den) == 1` (with `0` stored as `0/1`).
/// Because of the invariants, derived structural equality would be correct,
/// but `Eq`/`Ord`/`Hash` are implemented explicitly to make the contract
/// obvious and independent of field order.
#[derive(Clone, Copy, Debug)]
pub struct Rat {
    num: i128,
    den: i128,
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };
    /// Two.
    pub const TWO: Rat = Rat { num: 2, den: 1 };

    /// Construct `num/den`, reducing to lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    #[inline]
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "Rat::new: zero denominator (num={num})");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd_i128(num, den);
        if g == 0 {
            return Rat::ZERO;
        }
        Rat {
            num: sign * (num / g),
            den: sign * (den / g),
        }
    }

    /// Construct an integer-valued rational.
    #[inline]
    pub const fn from_int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// Numerator (sign-carrying, reduced).
    #[inline]
    pub const fn numer(self) -> i128 {
        self.num
    }

    /// Denominator (strictly positive, reduced).
    #[inline]
    pub const fn denom(self) -> i128 {
        self.den
    }

    /// `true` iff the value is an integer.
    #[inline]
    pub const fn is_integer(self) -> bool {
        self.den == 1
    }

    /// `true` iff the value is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.num == 0
    }

    /// `true` iff the value is strictly positive.
    #[inline]
    pub const fn is_positive(self) -> bool {
        self.num > 0
    }

    /// `true` iff the value is strictly negative.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Sign of the value as `-1`, `0`, or `1`.
    #[inline]
    pub const fn signum(self) -> i128 {
        self.num.signum()
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Rat {
        if self.num < 0 {
            -self
        } else {
            self
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero.
    #[inline]
    pub fn recip(self) -> Rat {
        assert!(self.num != 0, "Rat::recip of zero");
        Rat::new(self.den, self.num)
    }

    /// Largest integer `<= self`.
    pub fn floor(self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            // Round toward negative infinity.
            -((-self.num + self.den - 1) / self.den)
        }
    }

    /// Smallest integer `>= self`.
    pub fn ceil(self) -> i128 {
        -((-self).floor())
    }

    /// Approximate as `f64` (for plotting / CSV output only — never used in
    /// bound computations).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// The smaller of `self` and `other`.
    #[inline]
    pub fn min(self, other: Rat) -> Rat {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of `self` and `other`.
    #[inline]
    pub fn max(self, other: Rat) -> Rat {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Clamp into `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn clamp(self, lo: Rat, hi: Rat) -> Rat {
        assert!(lo <= hi, "Rat::clamp: lo > hi");
        self.max(lo).min(hi)
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: Rat) -> Option<Rat> {
        // a/b + c/d = (a*(d/g) + c*(b/g)) / (b/g*d), g = gcd(b, d).
        let g = gcd_i128(self.den, rhs.den);
        let db = self.den / g;
        let dd = rhs.den / g;
        let num = self
            .num
            .checked_mul(dd)?
            .checked_add(rhs.num.checked_mul(db)?)?;
        let den = self.den.checked_mul(dd)?;
        Some(Rat::new(num, den))
    }

    /// Checked multiplication; `None` on overflow.
    pub fn checked_mul(self, rhs: Rat) -> Option<Rat> {
        // Cross-reduce before multiplying to keep intermediates small.
        let g1 = gcd_i128(self.num, rhs.den);
        let g2 = gcd_i128(rhs.num, self.den);
        let num = (self.num / g1).checked_mul(rhs.num / g2)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1)?;
        Some(Rat::new(num, den))
    }

    /// Fallible addition: [`NumError::Overflow`] instead of panicking.
    #[inline]
    pub fn try_add(self, rhs: Rat) -> Result<Rat, NumError> {
        self.checked_add(rhs).ok_or(NumError::Overflow)
    }

    /// Fallible subtraction: [`NumError::Overflow`] instead of panicking.
    #[inline]
    pub fn try_sub(self, rhs: Rat) -> Result<Rat, NumError> {
        self.checked_add(-rhs).ok_or(NumError::Overflow)
    }

    /// Fallible multiplication: [`NumError::Overflow`] instead of panicking.
    #[inline]
    pub fn try_mul(self, rhs: Rat) -> Result<Rat, NumError> {
        self.checked_mul(rhs).ok_or(NumError::Overflow)
    }

    /// Fallible division: [`NumError::DivisionByZero`] on a zero divisor,
    /// [`NumError::Overflow`] when the quotient leaves the `i128` range.
    #[inline]
    pub fn try_div(self, rhs: Rat) -> Result<Rat, NumError> {
        if rhs.is_zero() {
            return Err(NumError::DivisionByZero);
        }
        self.checked_mul(rhs.recip()).ok_or(NumError::Overflow)
    }

    /// Saturating addition: clamps to the representable extremes on
    /// overflow instead of panicking, with a debug assertion so tests
    /// still notice. Only appropriate where the caller tolerates a
    /// conservative bound (e.g. "infinite" burst placeholders).
    pub fn saturating_add(self, rhs: Rat) -> Rat {
        self.checked_add(rhs).unwrap_or_else(|| {
            debug_assert!(false, "Rat::saturating_add overflow: {self} + {rhs}");
            // Additive overflow requires both operands on the same side of
            // zero, so the sign of `self` picks the saturation end.
            // `MIN + 1` keeps the result negatable.
            if self.num < 0 {
                Rat::from_int(i128::MIN + 1)
            } else {
                Rat::from_int(i128::MAX)
            }
        })
    }

    /// Integer power (negative exponents allowed for nonzero values).
    pub fn powi(self, mut exp: i32) -> Rat {
        let mut base = if exp < 0 {
            exp = -exp;
            self.recip()
        } else {
            self
        };
        let mut acc = Rat::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            exp >>= 1;
            if exp > 0 {
                base = base * base;
            }
        }
        acc
    }

    /// Linear interpolation `self + t * (other - self)`.
    pub fn lerp(self, other: Rat, t: Rat) -> Rat {
        self + t * (other - self)
    }

    /// The smallest multiple of `1/den` at or above `self` — used to keep
    /// denominators bounded in iterative computations where rounding *up*
    /// preserves soundness (e.g. fixed-point delay iterations).
    ///
    /// # Panics
    /// Panics unless `den > 0`.
    pub fn ceil_to_denom(self, den: i128) -> Rat {
        assert!(den > 0, "ceil_to_denom: den must be positive");
        let scaled = self * Rat::from_int(den);
        Rat::new(scaled.ceil(), den)
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::ZERO
    }
}

impl PartialEq for Rat {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        // Reduced with positive denominator => structural equality is exact.
        self.num == other.num && self.den == other.den
    }
}

impl Eq for Rat {}

impl Hash for Rat {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.num.hash(state);
        self.den.hash(state);
    }
}

impl PartialOrd for Rat {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Full 256-bit magnitude of `|a| * |b|` as `(high, low)` `u128` halves.
fn wide_mul_abs(a: i128, b: i128) -> (u128, u128) {
    let (a, b) = (a.unsigned_abs(), b.unsigned_abs());
    let (ah, al) = (a >> 64, a & u64::MAX as u128);
    let (bh, bl) = (b >> 64, b & u64::MAX as u128);
    // Schoolbook on 64-bit halves; each partial product fits in u128.
    let ll = al * bl;
    let lh = al * bh;
    let hl = ah * bl;
    let hh = ah * bh;
    let (mid, mid_carry) = lh.overflowing_add(hl);
    let (low, low_carry) = ll.overflowing_add(mid << 64);
    let high = hh + (mid >> 64) + ((mid_carry as u128) << 64) + low_carry as u128;
    (high, low)
}

/// Compare the exact signed products `a1*b1` and `a2*b2` without overflow,
/// widening to 256 bits.
fn cmp_products(a1: i128, b1: i128, a2: i128, b2: i128) -> Ordering {
    let s1 = a1.signum() * b1.signum();
    let s2 = a2.signum() * b2.signum();
    if s1 != s2 {
        return s1.cmp(&s2);
    }
    let m1 = wide_mul_abs(a1, b1);
    let m2 = wide_mul_abs(a2, b2);
    if s1 >= 0 {
        m1.cmp(&m2)
    } else {
        m2.cmp(&m1)
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b <=> c/d  (b, d > 0)  <=>  a*d <=> c*b. Cross-reduce, then
        // compare the exact 256-bit cross products — `cmp` is total for
        // every pair of representable rationals, never panicking even
        // where `checked_mul` would report overflow.
        let g = gcd_i128(self.den, other.den);
        cmp_products(self.num, other.den / g, other.num, self.den / g)
    }
}

impl Add for Rat {
    type Output = Rat;
    #[inline]
    fn add(self, rhs: Rat) -> Rat {
        self.checked_add(rhs)
            // audit: allow(panic, operator impls cannot return Result; fallible callers use try_add)
            .unwrap_or_else(|| panic!("Rat overflow in {self} + {rhs}"))
    }
}

impl Sub for Rat {
    type Output = Rat;
    #[inline]
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Mul for Rat {
    type Output = Rat;
    #[inline]
    fn mul(self, rhs: Rat) -> Rat {
        self.checked_mul(rhs)
            // audit: allow(panic, operator impls cannot return Result; fallible callers use try_mul)
            .unwrap_or_else(|| panic!("Rat overflow in {self} * {rhs}"))
    }
}

impl Div for Rat {
    type Output = Rat;
    #[inline]
    fn div(self, rhs: Rat) -> Rat {
        assert!(!rhs.is_zero(), "Rat division by zero: {self} / 0");
        self * rhs.recip()
    }
}

impl Neg for Rat {
    type Output = Rat;
    #[inline]
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rat {
    fn mul_assign(&mut self, rhs: Rat) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rat {
    fn div_assign(&mut self, rhs: Rat) {
        *self = *self / rhs;
    }
}

impl Sum for Rat {
    fn sum<I: Iterator<Item = Rat>>(iter: I) -> Rat {
        iter.fold(Rat::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Rat> for Rat {
    fn sum<I: Iterator<Item = &'a Rat>>(iter: I) -> Rat {
        iter.fold(Rat::ZERO, |a, b| a + *b)
    }
}

impl Product for Rat {
    fn product<I: Iterator<Item = Rat>>(iter: I) -> Rat {
        iter.fold(Rat::ONE, |a, b| a * b)
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Rat {
            #[inline]
            fn from(v: $t) -> Rat { Rat::from_int(v as i128) }
        }
    )*};
}
impl_from_int!(i8, i16, i32, i64, i128, u8, u16, u32, u64);

impl From<(i128, i128)> for Rat {
    #[inline]
    fn from((n, d): (i128, i128)) -> Rat {
        Rat::new(n, d)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Error returned by [`Rat::from_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatParseError(pub String);

impl fmt::Display for RatParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.0)
    }
}

impl std::error::Error for RatParseError {}

impl FromStr for Rat {
    type Err = RatParseError;

    /// Parses `"3"`, `"-3/4"`, or decimal literals like `"0.25"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || RatParseError(s.to_string());
        let s = s.trim();
        if let Some((n, d)) = s.split_once('/') {
            let n: i128 = n.trim().parse().map_err(|_| bad())?;
            let d: i128 = d.trim().parse().map_err(|_| bad())?;
            if d == 0 {
                return Err(bad());
            }
            Ok(Rat::new(n, d))
        } else if let Some((int_part, frac_part)) = s.split_once('.') {
            let neg = int_part.trim_start().starts_with('-');
            let i: i128 = if int_part.is_empty() || int_part == "-" {
                0
            } else {
                int_part.parse().map_err(|_| bad())?
            };
            if frac_part.is_empty() || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(bad());
            }
            if frac_part.len() > 30 {
                return Err(bad());
            }
            let f: i128 = frac_part.parse().map_err(|_| bad())?;
            let scale = 10i128.checked_pow(frac_part.len() as u32).ok_or_else(bad)?;
            let frac = Rat::new(f, scale);
            let int = Rat::from_int(i);
            Ok(if neg { int - frac } else { int + frac })
        } else {
            let n: i128 = s.parse().map_err(|_| bad())?;
            Ok(Rat::from_int(n))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reduces() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, 4), Rat::new(1, -2));
        assert_eq!(Rat::new(0, 7), Rat::ZERO);
        assert_eq!(Rat::new(6, -4).numer(), -3);
        assert_eq!(Rat::new(6, -4).denom(), 2);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    fn arithmetic_basics() {
        let a = Rat::new(1, 2);
        let b = Rat::new(1, 3);
        assert_eq!(a + b, Rat::new(5, 6));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 6));
        assert_eq!(a / b, Rat::new(3, 2));
        assert_eq!(-a, Rat::new(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::new(-1, 3));
        assert!(Rat::new(7, 7) == Rat::ONE);
        let mut v = vec![Rat::new(3, 4), Rat::ZERO, Rat::new(-5, 2), Rat::ONE];
        v.sort();
        assert_eq!(
            v,
            vec![Rat::new(-5, 2), Rat::ZERO, Rat::new(3, 4), Rat::ONE]
        );
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::from_int(5).floor(), 5);
        assert_eq!(Rat::from_int(5).ceil(), 5);
        assert_eq!(Rat::ZERO.floor(), 0);
    }

    #[test]
    fn recip_and_powi() {
        assert_eq!(Rat::new(3, 4).recip(), Rat::new(4, 3));
        assert_eq!(Rat::new(2, 3).powi(3), Rat::new(8, 27));
        assert_eq!(Rat::new(2, 3).powi(-2), Rat::new(9, 4));
        assert_eq!(Rat::new(5, 7).powi(0), Rat::ONE);
    }

    #[test]
    fn parse() {
        assert_eq!("3".parse::<Rat>().unwrap(), Rat::from_int(3));
        assert_eq!("-3/4".parse::<Rat>().unwrap(), Rat::new(-3, 4));
        assert_eq!("0.25".parse::<Rat>().unwrap(), Rat::new(1, 4));
        assert_eq!("-0.5".parse::<Rat>().unwrap(), Rat::new(-1, 2));
        assert_eq!("1.125".parse::<Rat>().unwrap(), Rat::new(9, 8));
        assert!("1/0".parse::<Rat>().is_err());
        assert!("abc".parse::<Rat>().is_err());
        assert!("1.2.3".parse::<Rat>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for r in [
            Rat::new(-7, 3),
            Rat::ZERO,
            Rat::from_int(42),
            Rat::new(1, 9),
        ] {
            let s = r.to_string();
            assert_eq!(s.parse::<Rat>().unwrap(), r);
        }
    }

    #[test]
    fn sums_and_products() {
        let v = [Rat::new(1, 2), Rat::new(1, 3), Rat::new(1, 6)];
        assert_eq!(v.iter().sum::<Rat>(), Rat::ONE);
        assert_eq!(v.iter().copied().product::<Rat>(), Rat::new(1, 36));
    }

    #[test]
    fn min_max_clamp_lerp() {
        let a = Rat::new(1, 2);
        let b = Rat::new(2, 3);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(Rat::from_int(9).clamp(Rat::ZERO, Rat::ONE), Rat::ONE);
        assert_eq!(a.lerp(b, Rat::ZERO), a);
        assert_eq!(a.lerp(b, Rat::ONE), b);
        assert_eq!(Rat::ZERO.lerp(Rat::from_int(4), Rat::new(1, 4)), Rat::ONE);
    }

    #[test]
    fn gcd_edge_cases() {
        assert_eq!(gcd_i128(0, 0), 0);
        assert_eq!(gcd_i128(0, 5), 5);
        assert_eq!(gcd_i128(-4, 6), 2);
        assert_eq!(gcd_i128(12, -18), 6);
    }

    #[test]
    fn to_f64_approx() {
        assert!((Rat::new(1, 3).to_f64() - 0.333333).abs() < 1e-5);
    }

    // A pair of rationals whose cross products overflow i128. The
    // numerators are coprime to both denominators (2^126 + 1 ≡ 2 mod 3,
    // 2^126 - 1 ≡ 3 mod 5), so neither fraction reduces and a*d, c*b
    // are ~2^126 * small — past i128::MAX.
    fn huge_pair() -> (Rat, Rat) {
        let big = 1i128 << 126;
        (Rat::new(big + 1, 3), Rat::new(big - 1, 5))
    }

    #[test]
    fn checked_ops_report_overflow_cleanly() {
        let (a, b) = huge_pair();
        assert_eq!(a.checked_mul(b), None);
        assert_eq!(a.try_mul(b), Err(NumError::Overflow));
        let big = Rat::from_int(i128::MAX / 2 + 1);
        assert_eq!(big.checked_add(big), None);
        assert_eq!(big.try_add(big), Err(NumError::Overflow));
        assert_eq!(big.try_sub(-big), Err(NumError::Overflow));
        // Division overflowing via the reciprocal product.
        assert_eq!(a.try_div(b.recip()), Err(NumError::Overflow));
        assert_eq!(Rat::ONE.try_div(Rat::ZERO), Err(NumError::DivisionByZero));
        // Non-overflowing cases still succeed.
        assert_eq!(Rat::new(1, 2).try_add(Rat::new(1, 3)), Ok(Rat::new(5, 6)));
        assert_eq!(Rat::new(1, 2).try_mul(Rat::new(2, 3)), Ok(Rat::new(1, 3)));
    }

    #[test]
    fn cmp_is_total_under_overflow() {
        // These comparisons overflow i128 cross-multiplication; the widening
        // path must still order them correctly (and must not panic).
        let (a, b) = huge_pair();
        assert!(a > b); // big/3 > (big-1)/7
        assert!(-a < -b);
        assert!(-a < b);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        // Values differing only in the 256-bit low half.
        let x = Rat::new((1i128 << 126) + 1, (1i128 << 125) - 1);
        let y = Rat::new((1i128 << 126) - 1, (1i128 << 125) + 3);
        assert!(x > y);
        assert!(x.min(y) == y && x.max(y) == x);
    }

    #[test]
    fn wide_mul_abs_matches_checked_mul_when_in_range() {
        for (a, b) in [
            (0i128, 5i128),
            (7, -9),
            (i128::MAX, 1),
            (i128::MAX, -1),
            ((1 << 64) + 17, (1 << 63) - 3),
            (-(1 << 90), 1 << 30),
        ] {
            if let Some(p) = a.checked_mul(b) {
                assert_eq!(wide_mul_abs(a, b), (0, p.unsigned_abs()), "{a} * {b}");
            }
        }
        // And one genuinely 256-bit case: (2^127 - 1)^2.
        let (hi, lo) = wide_mul_abs(i128::MAX, i128::MAX);
        // (2^127 - 1)^2 = 2^254 - 2^128 + 1.
        assert_eq!(hi, (1u128 << 126) - 1);
        assert_eq!(lo, 1);
    }

    #[test]
    fn saturating_add_clamps_in_release() {
        // debug_assert fires under `cargo test`, so only probe the clamp in
        // release-style builds.
        if cfg!(debug_assertions) {
            let v = Rat::new(1, 4).saturating_add(Rat::new(1, 4));
            assert_eq!(v, Rat::new(1, 2));
        } else {
            let big = Rat::from_int(i128::MAX / 2 + 1);
            assert_eq!(big.saturating_add(big), Rat::from_int(i128::MAX));
            // -big + -big is exactly i128::MIN (representable, no clamp), so
            // push one further to actually overflow the negative end.
            let neg = Rat::from_int(i128::MIN + 1);
            assert_eq!(neg.saturating_add(neg), Rat::from_int(i128::MIN + 1));
        }
    }
}
