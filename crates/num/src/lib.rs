#![warn(missing_docs)]

//! # dnc-num — exact rational arithmetic for deterministic network calculus
//!
//! Every quantity in a deterministic network-calculus computation (bucket
//! sizes, token rates, link rates, delay bounds, curve breakpoints) is the
//! result of finitely many field operations on the input parameters. Doing
//! those operations in floating point makes bound comparisons (`Integrated ≤
//! Decomposed`, `bound ≥ simulated delay`) fuzzy; doing them over exact
//! rationals makes them decidable, which the test-suite of the workspace
//! leans on heavily.
//!
//! [`Rat`] is a reduced fraction over `i128` with denominators kept strictly
//! positive. Intermediate products are cross-reduced before multiplying, so
//! overflow only occurs for genuinely astronomical values; when it does, the
//! operators panic with a diagnostic rather than silently wrapping, and the
//! fallible `try_add`/`try_sub`/`try_mul`/`try_div` variants return
//! [`NumError::Overflow`] for callers that want to degrade gracefully.
//! Comparison (`Ord`) widens cross products to 256 bits internally, so it is
//! total and panic-free for *every* pair of representable rationals.
//!
//! ```
//! use dnc_num::Rat;
//! let third = Rat::new(1, 3);
//! assert_eq!(third + third + third, Rat::ONE);
//! assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
//! assert!(Rat::new(-1, 2) < Rat::ZERO);
//! ```

mod rat;

pub use rat::{gcd_i128, NumError, Rat, RatParseError};

/// Convenience constructor: `rat(n, d)` is `Rat::new(n, d)`.
#[inline]
pub fn rat<N: Into<i128>, D: Into<i128>>(num: N, den: D) -> Rat {
    Rat::new(num.into(), den.into())
}

/// Convenience constructor for integral rationals.
#[inline]
pub fn int<N: Into<i128>>(num: N) -> Rat {
    Rat::from_int(num.into())
}
