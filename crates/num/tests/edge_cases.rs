//! Edge-case tests for `Rat`: overflow paths, rounding helpers, and
//! boundary values the property tests' small generators never reach.

use dnc_num::{int, rat, Rat};

#[test]
fn checked_ops_detect_overflow() {
    let huge = Rat::new(i128::MAX - 1, 1);
    assert!(huge.checked_add(huge).is_none());
    assert!(huge.checked_mul(huge).is_none());
    assert!(huge.checked_add(Rat::ONE).is_some());
    // Cross-reduction saves structurally-reducible products.
    let a = Rat::new(i128::MAX / 3, 5);
    let b = Rat::new(5, i128::MAX / 3);
    assert_eq!(a.checked_mul(b), Some(Rat::ONE));
}

#[test]
fn large_value_ordering() {
    let a = Rat::new(i128::MAX / 2, 3);
    let b = Rat::new(i128::MAX / 2 - 1, 3);
    assert!(b < a);
    assert!(a == a);
}

#[test]
fn ceil_to_denom_grid() {
    assert_eq!(rat(5, 3).ceil_to_denom(4), rat(7, 4));
    assert_eq!(rat(7, 4).ceil_to_denom(4), rat(7, 4), "grid points fixed");
    assert_eq!(Rat::ZERO.ceil_to_denom(1000), Rat::ZERO);
    assert_eq!(rat(-5, 3).ceil_to_denom(4), rat(-6, 4).ceil_to_denom(4));
    assert_eq!(rat(-5, 3).ceil_to_denom(4), rat(-3, 2));
    // Coarser grid rounds up further.
    assert_eq!(rat(5, 3).ceil_to_denom(1), int(2));
}

#[test]
fn ceil_to_denom_never_decreases() {
    for n in -50i128..50 {
        for d in 1i128..8 {
            let x = Rat::new(n, d);
            for g in [1i128, 2, 3, 16, 4096] {
                let r = x.ceil_to_denom(g);
                assert!(r >= x, "{x} rounded down to {r}");
                assert!(r - x < Rat::new(1, g), "{x} over-rounded to {r}");
            }
        }
    }
}

#[test]
fn powi_extremes() {
    assert_eq!(Rat::TWO.powi(20), int(1 << 20));
    assert_eq!(Rat::TWO.powi(-20), Rat::new(1, 1 << 20));
    assert_eq!(Rat::ONE.powi(1_000), Rat::ONE);
    assert_eq!(int(-1).powi(3), int(-1));
    assert_eq!(int(-1).powi(4), int(1));
}

#[test]
fn signum_and_zero_edge() {
    assert_eq!(Rat::ZERO.signum(), 0);
    assert_eq!(rat(-1, 7).signum(), -1);
    assert!(!Rat::ZERO.is_positive() && !Rat::ZERO.is_negative());
    assert_eq!(-Rat::ZERO, Rat::ZERO);
}

#[test]
fn parse_whitespace_and_signs() {
    assert_eq!("  3/4 ".parse::<Rat>().unwrap(), rat(3, 4));
    assert_eq!("-0".parse::<Rat>().unwrap(), Rat::ZERO);
    assert_eq!("3/-4".parse::<Rat>().unwrap(), rat(-3, 4));
    assert!("".parse::<Rat>().is_err());
    assert!("1/".parse::<Rat>().is_err());
    assert!("/2".parse::<Rat>().is_err());
    assert!(".".parse::<Rat>().is_err());
}

#[test]
fn parse_decimal_edge() {
    assert_eq!("0.0".parse::<Rat>().unwrap(), Rat::ZERO);
    assert_eq!("10.50".parse::<Rat>().unwrap(), rat(21, 2));
    assert_eq!("-.5".parse::<Rat>().unwrap(), rat(-1, 2));
    // Over-long fractional parts are rejected rather than silently lossy.
    assert!("0.1234567890123456789012345678901".parse::<Rat>().is_err());
}

#[test]
fn hash_consistency() {
    use std::collections::HashSet;
    let mut set = HashSet::new();
    set.insert(rat(2, 4));
    assert!(set.contains(&rat(1, 2)), "reduced forms hash equal");
    set.insert(rat(1, 3));
    set.insert(rat(2, 6));
    assert_eq!(set.len(), 2);
}

#[test]
fn sum_of_empty_iterator() {
    let v: Vec<Rat> = vec![];
    assert_eq!(v.iter().sum::<Rat>(), Rat::ZERO);
    assert_eq!(v.into_iter().product::<Rat>(), Rat::ONE);
}

#[test]
fn assign_ops() {
    let mut x = rat(1, 2);
    x += rat(1, 3);
    assert_eq!(x, rat(5, 6));
    x -= rat(1, 6);
    assert_eq!(x, rat(2, 3));
    x *= int(3);
    assert_eq!(x, int(2));
    x /= int(4);
    assert_eq!(x, rat(1, 2));
}

#[test]
#[should_panic(expected = "division by zero")]
fn div_by_zero_panics() {
    let _ = Rat::ONE / Rat::ZERO;
}

#[test]
#[should_panic(expected = "recip of zero")]
fn recip_zero_panics() {
    let _ = Rat::ZERO.recip();
}

#[test]
#[should_panic(expected = "lo > hi")]
fn clamp_bad_range_panics() {
    let _ = Rat::ONE.clamp(int(2), int(1));
}
