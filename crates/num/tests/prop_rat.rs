//! Property tests: `Rat` behaves like the field of rationals with a total
//! order compatible with arithmetic.

use dnc_num::Rat;
use proptest::prelude::*;

fn arb_rat() -> impl Strategy<Value = Rat> {
    (-10_000i128..10_000, 1i128..10_000).prop_map(|(n, d)| Rat::new(n, d))
}

proptest! {
    #[test]
    fn add_commutative(a in arb_rat(), b in arb_rat()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn add_associative(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn mul_commutative(a in arb_rat(), b in arb_rat()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn mul_associative(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn distributive(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn additive_inverse(a in arb_rat()) {
        prop_assert_eq!(a + (-a), Rat::ZERO);
        prop_assert_eq!(a - a, Rat::ZERO);
    }

    #[test]
    fn multiplicative_inverse(a in arb_rat()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a * a.recip(), Rat::ONE);
        prop_assert_eq!(a / a, Rat::ONE);
    }

    #[test]
    fn order_translation_invariant(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
        prop_assert_eq!(a < b, a + c < b + c);
    }

    #[test]
    fn order_scaling(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
        prop_assume!(c.is_positive());
        prop_assert_eq!(a < b, a * c < b * c);
    }

    #[test]
    fn floor_ceil_bracket(a in arb_rat()) {
        let f = Rat::from_int(a.floor());
        let c = Rat::from_int(a.ceil());
        prop_assert!(f <= a && a <= c);
        prop_assert!(a - f < Rat::ONE);
        prop_assert!(c - a < Rat::ONE);
        if a.is_integer() {
            prop_assert_eq!(f, a);
            prop_assert_eq!(c, a);
        } else {
            prop_assert_eq!(c - f, Rat::ONE);
        }
    }

    #[test]
    fn display_parse_round_trip(a in arb_rat()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Rat>().unwrap(), a);
    }

    #[test]
    fn to_f64_consistent_with_order(a in arb_rat(), b in arb_rat()) {
        // f64 is a (lossy) order homomorphism for these small values.
        if a < b {
            prop_assert!(a.to_f64() <= b.to_f64());
        }
    }

    #[test]
    fn abs_signum(a in arb_rat()) {
        prop_assert_eq!(a.abs(), if a.is_negative() { -a } else { a });
        prop_assert_eq!(Rat::from_int(a.signum()) * a.abs(), a);
    }

    #[test]
    fn min_max_consistent(a in arb_rat(), b in arb_rat()) {
        prop_assert_eq!(a.min(b) + a.max(b), a + b);
        prop_assert!(a.min(b) <= a.max(b));
    }
}
