//! Edge-case tests for the network model, builders, and pairing.

use dnc_net::builders::{chain, random_feedforward, ring, tandem, two_server, TandemOptions};
use dnc_net::pairing::{classify_pair_flows, partition, Group, PairingStrategy};
use dnc_net::{Discipline, Flow, Network, NetworkError, Server, ServerId};
use dnc_num::{int, rat, Rat};
use dnc_traffic::TrafficSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn spec() -> TrafficSpec {
    TrafficSpec::paper_source(int(1), rat(1, 8))
}

#[test]
fn single_server_network() {
    let mut net = Network::new();
    let a = net.add_server(Server::unit_fifo("a"));
    net.add_flow(Flow {
        name: "f".into(),
        spec: spec(),
        route: vec![a],
        priority: 0,
    })
    .unwrap();
    assert_eq!(net.topological_order().unwrap(), vec![a]);
    assert_eq!(net.precedence_edges(), vec![]);
    net.validate().unwrap();
    let p = partition(&net, PairingStrategy::GreedyChain).unwrap();
    assert_eq!(p.groups, vec![Group::Single(a)]);
}

#[test]
fn empty_network_is_trivially_valid() {
    let net = Network::new();
    assert!(net.topological_order().unwrap().is_empty());
    assert_eq!(net.max_utilization(), Rat::ZERO);
    net.validate().unwrap();
}

#[test]
fn server_without_flows_has_zero_load() {
    let mut net = Network::new();
    let a = net.add_server(Server::unit_fifo("a"));
    assert_eq!(net.load(a), Rat::ZERO);
    assert_eq!(net.utilization(a), Rat::ZERO);
    assert!(net.flows_through(a).is_empty());
}

#[test]
fn exact_capacity_is_overloaded() {
    // load == rate must be rejected (busy period never drains).
    let mut net = Network::new();
    let a = net.add_server(Server::unit_fifo("a"));
    for _ in 0..2 {
        net.add_flow(Flow {
            name: "f".into(),
            spec: TrafficSpec::token_bucket(int(1), rat(1, 2)),
            route: vec![a],
            priority: 0,
        })
        .unwrap();
    }
    assert!(matches!(
        net.validate(),
        Err(NetworkError::Overloaded { .. })
    ));
}

#[test]
fn tandem_n1_shape() {
    let t = tandem(1, int(1), rat(1, 8), TandemOptions::default());
    assert_eq!(t.net.flows().len(), 3);
    assert_eq!(t.middle.len(), 1);
    assert_eq!(t.net.flows_through(t.middle[0]).len(), 3);
}

#[test]
fn tandem_error_on_zero() {
    let r = std::panic::catch_unwind(|| tandem(0, int(1), rat(1, 8), TandemOptions::default()));
    assert!(r.is_err());
}

#[test]
fn tandem_sp_discipline_propagates() {
    let t = tandem(
        2,
        int(1),
        rat(1, 8),
        TandemOptions {
            discipline: Discipline::StaticPriority,
            ..TandemOptions::default()
        },
    );
    for &m in &t.middle {
        assert_eq!(t.net.server(m).discipline, Discipline::StaticPriority);
    }
    // conn0 priority 1, cross flows priority 0, per the builder contract.
    assert_eq!(t.net.flow(t.conn0).priority, 1);
    assert_eq!(t.net.flow(t.upper[0]).priority, 0);
}

#[test]
fn ring_full_circumference_routes_are_rotations() {
    let (net, flows, servers) = ring(5, 5, &spec());
    for (k, &f) in flows.iter().enumerate() {
        let route = &net.flow(f).route;
        assert_eq!(route.len(), 5);
        assert_eq!(route[0], servers[k]);
        assert_eq!(route[4], servers[(k + 4) % 5]);
    }
}

#[test]
fn two_server_with_empty_sets() {
    let (net, a, b, f12, f1, f2) = two_server(Rat::ONE, Rat::ONE, &[spec()], &[], &[]);
    assert_eq!((f12.len(), f1.len(), f2.len()), (1, 0, 0));
    let (s12, s1, s2) = classify_pair_flows(&net, a, b);
    assert_eq!(s12, f12);
    assert!(s1.is_empty() && s2.is_empty());
}

#[test]
fn chain_of_one_server() {
    let (net, flows, servers) = chain(1, &[spec(), spec()]);
    assert_eq!(servers.len(), 1);
    assert_eq!(net.flows_through(servers[0]), flows);
}

#[test]
fn hop_index_none_for_foreign_server() {
    let (net, flows, servers) = chain(2, &[spec()]);
    let mut net = net;
    let extra = net.add_server(Server::unit_fifo("x"));
    assert_eq!(net.hop_index(flows[0], extra), None);
    assert_eq!(net.hop_index(flows[0], servers[1]), Some(1));
}

#[test]
fn reserved_rate_default_and_override() {
    let mut net = Network::new();
    let g = net.add_server(Server {
        name: "g".into(),
        rate: Rat::from(2),
        discipline: Discipline::Gps,
    });
    let f = net
        .add_flow(Flow {
            name: "f".into(),
            spec: TrafficSpec::token_bucket(int(1), rat(1, 4)),
            route: vec![g],
            priority: 0,
        })
        .unwrap();
    assert_eq!(net.reserved_rate(f, g), rat(1, 4), "default = sustained");
    net.reserve(f, g, rat(3, 4));
    assert_eq!(net.reserved_rate(f, g), rat(3, 4));
    net.reserve(f, g, rat(1, 2));
    assert_eq!(net.reserved_rate(f, g), rat(1, 2), "overwrite");
}

#[test]
fn pairing_on_parallel_branches() {
    // Diamond: src -> {mid1, mid2} -> dst via two flows; every pairing
    // must stay acyclic and cover all servers exactly once.
    let mut net = Network::new();
    let src = net.add_server(Server::unit_fifo("src"));
    let m1 = net.add_server(Server::unit_fifo("m1"));
    let m2 = net.add_server(Server::unit_fifo("m2"));
    let dst = net.add_server(Server::unit_fifo("dst"));
    for route in [vec![src, m1, dst], vec![src, m2, dst]] {
        net.add_flow(Flow {
            name: "f".into(),
            spec: spec(),
            route,
            priority: 0,
        })
        .unwrap();
    }
    for strategy in [
        PairingStrategy::Singletons,
        PairingStrategy::GreedyChain,
        PairingStrategy::OptimalSmall,
    ] {
        let p = partition(&net, strategy).unwrap();
        let mut covered: Vec<ServerId> = p.groups.iter().flat_map(|g| g.servers()).collect();
        covered.sort();
        covered.dedup();
        assert_eq!(covered.len(), 4, "{strategy:?} must cover all servers once");
    }
}

#[test]
fn group_accessors() {
    let g1 = Group::Single(ServerId(3));
    let g2 = Group::Pair(ServerId(1), ServerId(2));
    assert!(g1.contains(ServerId(3)) && !g1.contains(ServerId(1)));
    assert!(g2.contains(ServerId(1)) && g2.contains(ServerId(2)));
    assert_eq!(g2.servers(), vec![ServerId(1), ServerId(2)]);
}

#[test]
fn random_feedforward_respects_caps() {
    let mut rng = StdRng::seed_from_u64(5);
    let net = random_feedforward(&mut rng, 4, 6, 2, rat(1, 2), false);
    for f in net.flows() {
        assert!(f.route.len() <= 2);
        assert!(f.spec.peak().is_none());
    }
    assert!(net.max_utilization() <= rat(1, 2));
}

#[test]
fn display_impls() {
    assert_eq!(ServerId(4).to_string(), "s4");
    assert_eq!(dnc_net::FlowId(7).to_string(), "f7");
    let e = NetworkError::NotFeedforward;
    assert!(e.to_string().contains("feedforward"));
}
