//! Steps 1–2 of Algorithm Integrated: partition the network into
//! subnetworks of at most two servers and order them topologically.
//!
//! The paper requires that "each input traffic of the (i+1)-th subnetwork
//! can be estimated by all input traffic of subsystems with order less than
//! (i+1)" — i.e. the *contracted* subnetwork graph must be acyclic. Pairing
//! two servers of a DAG can create a contracted cycle (a flow leaving the
//! pair and re-entering it through a third server), so every tentative pair
//! is checked before being accepted.

use crate::{FlowId, Network, NetworkError, ServerId};
use std::collections::VecDeque;

/// One subnetwork of the partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Group {
    /// A single server analyzed in isolation.
    Single(ServerId),
    /// Two servers `first → second` analyzed jointly with the two-server
    /// theorem. Invariant: at least one flow traverses `first` immediately
    /// followed by `second`.
    Pair(ServerId, ServerId),
}

impl Group {
    /// The servers of the group, in traversal order.
    pub fn servers(&self) -> Vec<ServerId> {
        match *self {
            Group::Single(s) => vec![s],
            Group::Pair(a, b) => vec![a, b],
        }
    }

    /// Whether the group contains `s`.
    pub fn contains(&self, s: ServerId) -> bool {
        match *self {
            Group::Single(a) => a == s,
            Group::Pair(a, b) => a == s || b == s,
        }
    }
}

/// A partition of all servers into [`Group`]s, stored in a valid
/// evaluation (topological) order.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Groups in evaluation order.
    pub groups: Vec<Group>,
}

impl Partition {
    /// The group index containing server `s`.
    pub fn group_of(&self, s: ServerId) -> usize {
        self.groups
            .iter()
            .position(|g| g.contains(s))
            .expect("partition covers all servers") // audit: allow(expect, partitions are constructed to cover every server of the network)
    }

    /// Number of paired groups (quality metric: more pairs = more delay
    /// dependencies captured).
    pub fn pair_count(&self) -> usize {
        self.groups
            .iter()
            .filter(|g| matches!(g, Group::Pair(..)))
            .count()
    }
}

/// How to choose the pairs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairingStrategy {
    /// No pairs at all: Algorithm Integrated degenerates to Algorithm
    /// Decomposed (useful as an ablation baseline).
    Singletons,
    /// Walk the topological order and greedily pair each unassigned server
    /// with the immediate successor sharing the most flows, subject to the
    /// contracted graph staying acyclic.
    GreedyChain,
    /// Exact maximum-weight acyclic pairing by branch-and-bound (weight =
    /// flows shared per pair). Exponential in the worst case; intended for
    /// networks of up to ~16 servers, falling back to
    /// [`PairingStrategy::GreedyChain`] beyond that.
    OptimalSmall,
}

/// Partition `net`'s servers according to `strategy`.
///
/// # Errors
/// Propagates [`NetworkError::NotFeedforward`] from the topological sort.
pub fn partition(net: &Network, strategy: PairingStrategy) -> Result<Partition, NetworkError> {
    let _span = dnc_telemetry::span("net.partition");
    let order = net.topological_order()?;
    let out = match strategy {
        PairingStrategy::Singletons => Ok(Partition {
            groups: order.into_iter().map(Group::Single).collect(),
        }),
        PairingStrategy::GreedyChain => greedy_chain(net, &order),
        PairingStrategy::OptimalSmall => {
            if net.servers().len() <= 16 {
                optimal_small(net, &order)
            } else {
                greedy_chain(net, &order)
            }
        }
    };
    if let Ok(p) = &out {
        let pairs = p.pair_count() as u64;
        dnc_telemetry::counter("net.pairing.pairs", pairs);
        dnc_telemetry::counter("net.pairing.singles", p.groups.len() as u64 - pairs);
    }
    out
}

/// Exact maximum-weight pairing: branch-and-bound over the servers in
/// topological order, keeping only assignments whose final contraction is
/// acyclic. Weight of a pair = number of flows making the `a → b`
/// transition (the traffic whose delay dependency the pair captures).
fn optimal_small(net: &Network, order: &[ServerId]) -> Result<Partition, NetworkError> {
    let n = net.servers().len();
    // Candidate pair edges with weights.
    let mut weights: Vec<Vec<usize>> = vec![vec![0; n]; n];
    for f in net.flows() {
        for w in f.route.windows(2) {
            weights[w[0].0][w[1].0] += 1; // audit: allow(index, weight/assignment tables are sized to the server/group count of the same network)
        }
    }

    struct Search<'a> {
        net: &'a Network,
        order: &'a [ServerId],
        weights: Vec<Vec<usize>>,
        best_weight: usize,
        best: Option<Vec<Group>>,
    }

    impl Search<'_> {
        fn recurse(&mut self, idx: usize, assigned: u32, groups: &mut Vec<Group>, weight: usize) {
            if idx == self.order.len() {
                if (weight > self.best_weight || self.best.is_none())
                    && contracted_order(self.net, groups).is_some()
                {
                    self.best_weight = weight;
                    self.best = Some(groups.clone());
                }
                return;
            }
            let u = self.order[idx]; // audit: allow(index, weight/assignment tables are sized to the server/group count of the same network)
            if assigned & (1 << u.0) != 0 {
                self.recurse(idx + 1, assigned, groups, weight);
                return;
            }
            // Optimistic bound: every remaining server could add the
            // single largest outgoing weight; prune when even that cannot
            // beat the incumbent.
            let optimistic: usize = self.order[idx..] // audit: allow(index, weight/assignment tables are sized to the server/group count of the same network)
                .iter()
                .filter(|s| assigned & (1 << s.0) == 0)
                .map(|s| self.weights[s.0].iter().copied().max().unwrap_or(0)) // audit: allow(index, weight/assignment tables are sized to the server/group count of the same network)
                .sum();
            if self.best.is_some() && weight + optimistic <= self.best_weight {
                return;
            }
            // Try pairing u with each unassigned positive-weight successor.
            for v in 0..self.weights.len() {
                // audit: allow(index, weight/assignment tables are sized to the server/group count of the same network)
                if self.weights[u.0][v] > 0 && assigned & (1 << v) == 0 {
                    groups.push(Group::Pair(u, ServerId(v)));
                    self.recurse(
                        idx + 1,
                        assigned | (1 << u.0) | (1 << v),
                        groups,
                        weight + self.weights[u.0][v], // audit: allow(index, weight/assignment tables are sized to the server/group count of the same network)
                    );
                    groups.pop();
                }
            }
            // Or leave u single.
            groups.push(Group::Single(u));
            self.recurse(idx + 1, assigned | (1 << u.0), groups, weight);
            groups.pop();
        }
    }

    let mut search = Search {
        net,
        order,
        weights,
        best_weight: 0,
        best: None,
    };
    search.recurse(0, 0, &mut Vec::new(), 0);
    let groups = search.best.ok_or(NetworkError::NotFeedforward)?;
    let order = contracted_order(net, &groups).ok_or(NetworkError::NotFeedforward)?;
    Ok(Partition {
        groups: order.into_iter().map(|i| groups[i]).collect(), // audit: allow(index, weight/assignment tables are sized to the server/group count of the same network)
    })
}

fn greedy_chain(net: &Network, order: &[ServerId]) -> Result<Partition, NetworkError> {
    let n = net.servers().len();
    let mut assigned = vec![false; n];
    let mut groups: Vec<Group> = Vec::new();

    // Flows sharing the immediate transition a -> b.
    let shared = |a: ServerId, b: ServerId| -> usize {
        net.flows()
            .iter()
            .filter(|f| f.route.windows(2).any(|w| w[0] == a && w[1] == b)) // audit: allow(index, weight/assignment tables are sized to the server/group count of the same network)
            .count()
    };

    for &u in order {
        // audit: allow(index, weight/assignment tables are sized to the server/group count of the same network)
        if assigned[u.0] {
            continue;
        }
        // Candidate successors: unassigned servers reached by an immediate
        // transition from u. Prefer same-discipline pairs (mixed pairs
        // cannot be analyzed jointly), then the largest shared-flow count.
        let mut cands: Vec<(bool, usize, ServerId)> = net
            .precedence_edges()
            .into_iter()
            .filter(|&(a, b)| a == u && !assigned[b.0]) // audit: allow(index, weight/assignment tables are sized to the server/group count of the same network)
            .map(|(_, b)| {
                (
                    net.server(u).discipline == net.server(b).discipline,
                    shared(u, b),
                    b,
                )
            })
            .filter(|&(_, c, _)| c > 0)
            .collect();
        cands.sort_by(|x, y| y.0.cmp(&x.0).then(y.1.cmp(&x.1)).then(x.2.cmp(&y.2)));
        let cands: Vec<(usize, ServerId)> = cands.into_iter().map(|(_, c, b)| (c, b)).collect();

        let mut placed = false;
        for (_, v) in cands {
            let mut trial = groups.clone();
            trial.push(Group::Pair(u, v));
            // Remaining servers as singletons for the acyclicity check.
            let mut trial_assigned = assigned.clone();
            trial_assigned[u.0] = true; // audit: allow(index, weight/assignment tables are sized to the server/group count of the same network)
            trial_assigned[v.0] = true; // audit: allow(index, weight/assignment tables are sized to the server/group count of the same network)
            for &w in order {
                // audit: allow(index, weight/assignment tables are sized to the server/group count of the same network)
                if !trial_assigned[w.0] {
                    trial.push(Group::Single(w));
                }
            }
            if contracted_order(net, &trial).is_some() {
                groups.push(Group::Pair(u, v));
                assigned[u.0] = true; // audit: allow(index, weight/assignment tables are sized to the server/group count of the same network)
                assigned[v.0] = true; // audit: allow(index, weight/assignment tables are sized to the server/group count of the same network)
                placed = true;
                break;
            }
        }
        if !placed {
            groups.push(Group::Single(u));
            assigned[u.0] = true; // audit: allow(index, weight/assignment tables are sized to the server/group count of the same network)
        }
    }

    let order = contracted_order(net, &groups).ok_or(NetworkError::NotFeedforward)?;
    Ok(Partition {
        groups: order.into_iter().map(|i| groups[i]).collect(), // audit: allow(index, weight/assignment tables are sized to the server/group count of the same network)
    })
}

/// Topological order of group indices in the contracted graph, or `None`
/// on a cycle.
fn contracted_order(net: &Network, groups: &[Group]) -> Option<Vec<usize>> {
    let ng = groups.len();
    let group_of = |s: ServerId| -> usize {
        groups
            .iter()
            .position(|g| g.contains(s))
            .expect("groups cover all servers") // audit: allow(expect, groups are constructed to cover every server of the network)
    };
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); ng];
    let mut indeg = vec![0usize; ng];
    let mut edges: Vec<(usize, usize)> = net
        .precedence_edges()
        .into_iter()
        .map(|(a, b)| (group_of(a), group_of(b)))
        .filter(|&(ga, gb)| ga != gb)
        .collect();
    edges.sort_unstable();
    edges.dedup();
    for (a, b) in edges {
        adj[a].push(b); // audit: allow(index, weight/assignment tables are sized to the server/group count of the same network)
        indeg[b] += 1; // audit: allow(index, weight/assignment tables are sized to the server/group count of the same network)
    }
    let mut queue: VecDeque<usize> = (0..ng).filter(|&i| indeg[i] == 0).collect(); // audit: allow(index, weight/assignment tables are sized to the server/group count of the same network)
    let mut out = Vec::with_capacity(ng);
    while let Some(u) = queue.pop_front() {
        out.push(u);
        // audit: allow(index, weight/assignment tables are sized to the server/group count of the same network)
        for &v in &adj[u] {
            // audit: allow(index, weight/assignment tables are sized to the server/group count of the same network)
            indeg[v] -= 1;
            // audit: allow(index, weight/assignment tables are sized to the server/group count of the same network)
            if indeg[v] == 0 {
                queue.push_back(v);
            }
        }
    }
    (out.len() == ng).then_some(out)
}

/// Classify the flows of a [`Group::Pair`] `(a, b)` into the paper's
/// Section-2 sets: `(S12, S1, S2)` — through both, through `a` only (then
/// leaving the subnetwork), and entering directly at `b`.
pub fn classify_pair_flows(
    net: &Network,
    a: ServerId,
    b: ServerId,
) -> (Vec<FlowId>, Vec<FlowId>, Vec<FlowId>) {
    let mut s12 = Vec::new();
    let mut s1 = Vec::new();
    let mut s2 = Vec::new();
    for (i, f) in net.flows().iter().enumerate() {
        let id = FlowId(i);
        let through_ab = f.route.windows(2).any(|w| w[0] == a && w[1] == b); // audit: allow(index, weight/assignment tables are sized to the server/group count of the same network)
        if through_ab {
            s12.push(id);
        } else if f.route.contains(&a) {
            s1.push(id);
        } else if f.route.contains(&b) {
            s2.push(id);
        }
    }
    (s12, s1, s2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{tandem, TandemOptions};
    use crate::{Flow, Network, Server};
    use dnc_num::{int, rat};
    use dnc_traffic::TrafficSpec;

    fn spec() -> TrafficSpec {
        TrafficSpec::paper_source(int(1), rat(1, 8))
    }

    #[test]
    fn singletons_cover_everything() {
        let t = tandem(4, int(1), rat(1, 8), TandemOptions::default());
        let p = partition(&t.net, PairingStrategy::Singletons).unwrap();
        assert_eq!(p.groups.len(), 4);
        assert_eq!(p.pair_count(), 0);
    }

    #[test]
    fn greedy_pairs_tandem_links() {
        let t = tandem(4, int(1), rat(1, 8), TandemOptions::default());
        let p = partition(&t.net, PairingStrategy::GreedyChain).unwrap();
        assert_eq!(p.pair_count(), 2);
        // Pairs follow the chain: (L0,L1), (L2,L3).
        assert_eq!(p.groups[0], Group::Pair(t.middle[0], t.middle[1]));
        assert_eq!(p.groups[1], Group::Pair(t.middle[2], t.middle[3]));
    }

    #[test]
    fn greedy_odd_chain_leaves_singleton() {
        let t = tandem(5, int(1), rat(1, 8), TandemOptions::default());
        let p = partition(&t.net, PairingStrategy::GreedyChain).unwrap();
        assert_eq!(p.pair_count(), 2);
        assert_eq!(p.groups.len(), 3);
        assert!(matches!(p.groups[2], Group::Single(_)));
    }

    #[test]
    fn pairing_refuses_contracted_cycle() {
        // a -> c -> b and a -> b: pairing (a, b) would create the
        // contracted cycle {a,b} -> {c} -> {a,b}.
        let mut net = Network::new();
        let a = net.add_server(Server::unit_fifo("a"));
        let b = net.add_server(Server::unit_fifo("b"));
        let c = net.add_server(Server::unit_fifo("c"));
        net.add_flow(Flow {
            name: "direct".into(),
            spec: spec(),
            route: vec![a, b],
            priority: 0,
        })
        .unwrap();
        net.add_flow(Flow {
            name: "detour".into(),
            spec: spec(),
            route: vec![a, c, b],
            priority: 0,
        })
        .unwrap();
        let p = partition(&net, PairingStrategy::GreedyChain).unwrap();
        // (a,b) must be rejected; (a,c) is legal.
        assert!(!p.groups.contains(&Group::Pair(a, b)));
        assert!(p.groups.contains(&Group::Pair(a, c)));
    }

    #[test]
    fn classify_pair_flows_tandem() {
        let t = tandem(3, int(1), rat(1, 8), TandemOptions::default());
        let (l0, l1) = (t.middle[0], t.middle[1]);
        let (s12, s1, s2) = classify_pair_flows(&t.net, l0, l1);
        // Through both: conn0 and lower0. Through L0 only: upper0.
        // Entering at L1: upper1 and lower1.
        assert_eq!(s12.len(), 2);
        assert!(s12.contains(&t.conn0) && s12.contains(&t.lower[0]));
        assert_eq!(s1, vec![t.upper[0]]);
        assert_eq!(s2.len(), 2);
        assert!(s2.contains(&t.upper[1]) && s2.contains(&t.lower[1]));
    }

    #[test]
    fn optimal_matches_greedy_on_tandem() {
        // On a plain chain the greedy pairing is already optimal.
        let t = tandem(6, int(1), rat(1, 8), TandemOptions::default());
        let g = partition(&t.net, PairingStrategy::GreedyChain).unwrap();
        let o = partition(&t.net, PairingStrategy::OptimalSmall).unwrap();
        assert_eq!(o.pair_count(), g.pair_count());
    }

    #[test]
    fn optimal_beats_greedy_on_forked_topology() {
        // a feeds b and c; greedy (most shared flows first) can commit to
        // the wrong partner. Build: 1 flow a->b, 1 flow a->c, 2 flows b->c
        // wait — make a clean case: greedy pairs (a,b) by tie-break, but
        // pairing (b,c) and leaving a single carries more weight.
        let mut net = Network::new();
        let a = net.add_server(Server::unit_fifo("a"));
        let b = net.add_server(Server::unit_fifo("b"));
        let c = net.add_server(Server::unit_fifo("c"));
        let mk = |name: &str, route: Vec<ServerId>| Flow {
            name: name.into(),
            spec: TrafficSpec::paper_source(int(1), rat(1, 32)),
            route,
            priority: 0,
        };
        // a->b weight 2, b->c weight 3: optimal = {(b,c), a}; a greedy
        // walk from the topological head pairs (a,b) first and leaves c.
        net.add_flow(mk("ab1", vec![a, b])).unwrap();
        net.add_flow(mk("ab2", vec![a, b])).unwrap();
        net.add_flow(mk("bc1", vec![b, c])).unwrap();
        net.add_flow(mk("bc2", vec![b, c])).unwrap();
        net.add_flow(mk("bc3", vec![b, c])).unwrap();
        let g = partition(&net, PairingStrategy::GreedyChain).unwrap();
        let o = partition(&net, PairingStrategy::OptimalSmall).unwrap();
        assert!(g.groups.contains(&Group::Pair(a, b)));
        assert!(o.groups.contains(&Group::Pair(b, c)));
    }

    #[test]
    fn optimal_respects_acyclicity() {
        // Same cycle trap as the greedy test: (a,b) would contract into a
        // cycle through c; optimal must avoid it too.
        let mut net = Network::new();
        let a = net.add_server(Server::unit_fifo("a"));
        let b = net.add_server(Server::unit_fifo("b"));
        let c = net.add_server(Server::unit_fifo("c"));
        for (name, route) in [("direct", vec![a, b]), ("detour", vec![a, c, b])] {
            net.add_flow(Flow {
                name: name.into(),
                spec: spec(),
                route,
                priority: 0,
            })
            .unwrap();
        }
        let o = partition(&net, PairingStrategy::OptimalSmall).unwrap();
        assert!(!o.groups.contains(&Group::Pair(a, b)));
    }

    #[test]
    fn partition_order_is_topological() {
        let t = tandem(6, int(1), rat(1, 8), TandemOptions::default());
        let p = partition(&t.net, PairingStrategy::GreedyChain).unwrap();
        // Group order must follow the chain.
        let firsts: Vec<ServerId> = p.groups.iter().map(|g| g.servers()[0]).collect();
        let mut sorted = firsts.clone();
        sorted.sort();
        assert_eq!(firsts, sorted);
    }
}
