#![warn(missing_docs)]

//! # dnc-net — feedforward network model and topology builders
//!
//! A [`Network`] is a set of work-conserving [`Server`]s (switch output
//! ports with a service rate and a scheduling [`Discipline`]) plus a set of
//! [`Flow`]s (the paper's *connections*), each with an entry
//! [`dnc_traffic::TrafficSpec`] and an ordered route of servers.
//!
//! The delay-analysis algorithms of `dnc-core` require **feedforward**
//! (cycle-free) networks, exactly as the paper's Algorithm Integrated does;
//! [`Network::topological_order`] both checks this and provides the
//! evaluation order for Step 2 of the algorithm.
//!
//! Topology builders:
//! * [`builders::tandem`] — the paper's Figure 3 network: `n` 3×3 switches
//!   in a chain, Connection 0 end-to-end plus upper/lower cross connections
//!   giving four connections on every interior middle link;
//! * [`builders::chain`] — a plain chain shared by all flows;
//! * [`builders::random_feedforward`] — randomized DAG workloads for
//!   stress tests.
//!
//! [`pairing`] implements Steps 1–2 of Algorithm Integrated: partition the
//! servers into subnetworks of at most two servers such that the contracted
//! subnetwork graph is still acyclic.

pub mod builders;
mod model;
pub mod pairing;

pub use model::{Discipline, Flow, FlowId, Network, NetworkError, Server, ServerId};
