//! Topology builders: the paper's tandem network, plain chains, and
//! randomized feedforward networks.

use crate::{Discipline, Flow, FlowId, Network, Server, ServerId};
use dnc_num::Rat;
use dnc_traffic::TrafficSpec;
use rand::Rng;

/// The paper's Figure 3 tandem network, fully constructed.
#[derive(Clone, Debug)]
pub struct Tandem {
    /// The network itself.
    pub net: Network,
    /// Connection 0 — the longest connection, through every middle link.
    pub conn0: FlowId,
    /// The upper cross connections (one per switch).
    pub upper: Vec<FlowId>,
    /// The lower cross connections (one per switch).
    pub lower: Vec<FlowId>,
    /// The contended middle output links `L_0 .. L_{n-1}`, in path order.
    pub middle: Vec<ServerId>,
}

/// Options for [`tandem`].
#[derive(Clone, Copy, Debug)]
pub struct TandemOptions {
    /// Also model the private (uncontended) exit ports of cross
    /// connections as unit-rate servers. They do not affect Connection 0's
    /// delay; the paper's evaluation ignores them, so the default is off.
    pub include_exit_ports: bool,
    /// Scheduling discipline of the middle links.
    pub discipline: Discipline,
    /// Cap every source at unit peak rate (`b(I) = min{I, σ + ρI}`, the
    /// paper's model). Turn off for plain uncapped token buckets (used by
    /// the closed-form cross-checks).
    pub unit_peak: bool,
}

impl Default for TandemOptions {
    fn default() -> Self {
        TandemOptions {
            include_exit_ports: false,
            discipline: Discipline::Fifo,
            unit_peak: true,
        }
    }
}

/// Build the paper's evaluation topology: `n` 3×3 switches in a chain with
/// `2n + 1` connections, every source constrained by
/// `b(I) = min{ I, σ + ρ·I }` (token bucket `σ`, rate `ρ`, unit peak).
///
/// Connection 0 runs through all `n` middle links. For each switch `j`, an
/// *upper* cross connection shares middle link `j` only, and a *lower*
/// cross connection shares middle links `j` and `j+1` (clipped at the
/// edge). Every interior middle link therefore carries **four** connections
/// (Connection 0, upper_j, lower_j, lower_{j-1}) and the first carries
/// three — matching the paper's description, so the interior-link
/// utilization is `U = 4ρ`.
///
/// # Panics
/// Panics if `n == 0`.
pub fn tandem(n: usize, sigma: Rat, rho: Rat, opts: TandemOptions) -> Tandem {
    assert!(n > 0, "tandem: need at least one switch");
    let mut net = Network::new();
    let spec = if opts.unit_peak {
        TrafficSpec::paper_source(sigma, rho)
    } else {
        TrafficSpec::token_bucket(sigma, rho)
    };

    let middle: Vec<ServerId> = (0..n)
        .map(|j| {
            net.add_server(Server {
                name: format!("L{j}"),
                rate: Rat::ONE,
                discipline: opts.discipline,
            })
        })
        .collect();

    // Connection 0: middle input of switch 0 -> middle output of switch n-1.
    let conn0 = net
        .add_flow(Flow {
            name: "conn0".into(),
            spec: spec.clone(),
            route: middle.clone(),
            priority: 1,
        })
        .expect("valid route"); // audit: allow(expect, route references servers this builder just added)

    let mut upper = Vec::with_capacity(n);
    let mut lower = Vec::with_capacity(n);
    for j in 0..n {
        // Upper cross connection: enters switch j, exits the upper output
        // port of switch j+1 -> contends only on middle link j.
        let mut route = vec![middle[j]]; // audit: allow(index, j + 1 <= n and middle has n + 1 entries)
        if opts.include_exit_ports {
            route.push(net.add_server(Server::unit_fifo(format!("U{}", j + 1))));
        }
        upper.push(
            net.add_flow(Flow {
                name: format!("upper{j}"),
                spec: spec.clone(),
                route,
                priority: 0,
            })
            .expect("valid route"), // audit: allow(expect, route references servers this builder just added)
        );

        // Lower cross connection: enters switch j, exits at switch j+2 ->
        // contends on middle links j and j+1 (clipped at the edge).
        let mut route = vec![middle[j]]; // audit: allow(index, j + 1 <= n and middle has n + 1 entries)
        if j + 1 < n {
            route.push(middle[j + 1]); // audit: allow(index, j + 1 <= n and middle has n + 1 entries)
        }
        if opts.include_exit_ports {
            route.push(net.add_server(Server::unit_fifo(format!("W{}", j + 2))));
        }
        lower.push(
            net.add_flow(Flow {
                name: format!("lower{j}"),
                spec: spec.clone(),
                route,
                priority: 0,
            })
            .expect("valid route"), // audit: allow(expect, route references servers this builder just added)
        );
    }

    Tandem {
        net,
        conn0,
        upper,
        lower,
        middle,
    }
}

/// A plain chain of `n` unit-rate FIFO servers traversed end-to-end by
/// every provided flow spec. Returns the network, the flow ids (in spec
/// order), and the chain servers.
pub fn chain(n: usize, specs: &[TrafficSpec]) -> (Network, Vec<FlowId>, Vec<ServerId>) {
    assert!(n > 0, "chain: need at least one server");
    let mut net = Network::new();
    let servers: Vec<ServerId> = (0..n)
        .map(|i| net.add_server(Server::unit_fifo(format!("s{i}"))))
        .collect();
    let flows = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            net.add_flow(Flow {
                name: format!("f{i}"),
                spec: spec.clone(),
                route: servers.clone(),
                priority: 0,
            })
            .expect("valid route") // audit: allow(expect, route references servers this builder just added)
        })
        .collect();
    (net, flows, servers)
}

/// The two-server subsystem of the paper's Section 2 (Figure 1): flows in
/// `s12` traverse both servers, `s1` only the first, `s2` only the second.
/// Returns `(network, server1, server2, s12 ids, s1 ids, s2 ids)`.
#[allow(clippy::type_complexity)]
pub fn two_server(
    rate1: Rat,
    rate2: Rat,
    s12: &[TrafficSpec],
    s1: &[TrafficSpec],
    s2: &[TrafficSpec],
) -> (
    Network,
    ServerId,
    ServerId,
    Vec<FlowId>,
    Vec<FlowId>,
    Vec<FlowId>,
) {
    let mut net = Network::new();
    let a = net.add_server(Server {
        name: "srv1".into(),
        rate: rate1,
        discipline: Discipline::Fifo,
    });
    let b = net.add_server(Server {
        name: "srv2".into(),
        rate: rate2,
        discipline: Discipline::Fifo,
    });
    let mut add = |prefix: &str, specs: &[TrafficSpec], route: Vec<ServerId>| -> Vec<FlowId> {
        specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                net.add_flow(Flow {
                    name: format!("{prefix}{i}"),
                    spec: spec.clone(),
                    route: route.clone(),
                    priority: 0,
                })
                .expect("valid route") // audit: allow(expect, route references servers this builder just added)
            })
            .collect()
    };
    let f12 = add("s12_", s12, vec![a, b]);
    let f1 = add("s1_", s1, vec![a]);
    let f2 = add("s2_", s2, vec![b]);
    (net, a, b, f12, f1, f2)
}

/// A ring of `n` unit-rate FIFO servers with `n` flows, each entering at
/// a different server and traversing `hops` consecutive servers (wrapping
/// around). For `hops >= 2` the precedence graph is cyclic, which the
/// feedforward algorithms reject — this is the test-bed for the
/// time-stopping analysis. Returns the network and the flow ids.
///
/// # Panics
/// Panics unless `1 <= hops <= n`.
pub fn ring(n: usize, hops: usize, spec: &TrafficSpec) -> (Network, Vec<FlowId>, Vec<ServerId>) {
    assert!(n > 0 && hops >= 1 && hops <= n, "ring: need 1 <= hops <= n");
    let mut net = Network::new();
    let servers: Vec<ServerId> = (0..n)
        .map(|i| net.add_server(Server::unit_fifo(format!("r{i}"))))
        .collect();
    let flows = (0..n)
        .map(|k| {
            let route: Vec<ServerId> = (0..hops).map(|j| servers[(k + j) % n]).collect(); // audit: allow(index, index taken modulo servers.len())
            net.add_flow(Flow {
                name: format!("f{k}"),
                spec: spec.clone(),
                route,
                priority: 0,
            })
            .expect("valid route") // audit: allow(expect, route references servers this builder just added)
        })
        .collect();
    (net, flows, servers)
}

/// Generate a random feedforward network: `n_servers` unit-rate FIFO
/// servers with `n_flows` flows routed along random increasing server
/// subsequences of length up to `max_hops`. Flow rates are scaled so no
/// server's utilization exceeds `util_target < 1`; bursts are small random
/// rationals.
pub fn random_feedforward<R: Rng + ?Sized>(
    rng: &mut R,
    n_servers: usize,
    n_flows: usize,
    max_hops: usize,
    util_target: Rat,
    with_peak: bool,
) -> Network {
    assert!(n_servers > 0 && n_flows > 0 && max_hops > 0);
    assert!(
        util_target.is_positive() && util_target < Rat::ONE,
        "util_target must be in (0,1)"
    );
    let mut net = Network::new();
    let servers: Vec<ServerId> = (0..n_servers)
        .map(|i| net.add_server(Server::unit_fifo(format!("s{i}"))))
        .collect();

    // Draw routes first to learn per-server flow counts.
    let mut routes: Vec<Vec<ServerId>> = Vec::with_capacity(n_flows);
    let mut counts = vec![0usize; n_servers];
    for _ in 0..n_flows {
        let hops = rng.gen_range(1..=max_hops.min(n_servers));
        let mut picks: Vec<usize> = (0..n_servers).collect();
        // Partial Fisher-Yates to pick `hops` distinct servers, then sort
        // ascending so the route respects the global server order (which
        // guarantees feedforwardness).
        for i in 0..hops {
            let j = rng.gen_range(i..n_servers);
            picks.swap(i, j);
        }
        let mut route: Vec<usize> = picks[..hops].to_vec(); // audit: allow(index, hops <= n_servers = picks.len())
        route.sort_unstable();
        for &s in &route {
            counts[s] += 1; // audit: allow(index, s < n_servers = counts.len() by construction of picks)
        }
        routes.push(route.into_iter().map(|i| servers[i]).collect()); // audit: allow(index, route entries index the servers vector built above)
    }

    let max_count = *counts.iter().max().unwrap() as i64; // audit: allow(unwrap, counts has one entry per server and n_servers >= 1)
    let rho = util_target / Rat::from(max_count);
    for (i, route) in routes.into_iter().enumerate() {
        let sigma = Rat::new(rng.gen_range(1..=8), rng.gen_range(1..=2));
        let spec = if with_peak {
            TrafficSpec::paper_source(sigma, rho)
        } else {
            TrafficSpec::token_bucket(sigma, rho)
        };
        net.add_flow(Flow {
            name: format!("f{i}"),
            spec,
            route,
            priority: (i % 3) as u8,
        })
        .expect("valid route"); // audit: allow(expect, route references servers this builder just added)
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_num::{int, rat};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tandem_matches_paper_counts() {
        for n in [1usize, 2, 4, 8] {
            let t = tandem(n, int(1), rat(1, 8), TandemOptions::default());
            assert_eq!(t.net.flows().len(), 2 * n + 1);
            assert_eq!(t.middle.len(), n);
            // First middle link: 3 connections; interior: 4.
            assert_eq!(t.net.flows_through(t.middle[0]).len(), 3);
            for j in 1..n {
                assert_eq!(
                    t.net.flows_through(t.middle[j]).len(),
                    4,
                    "link {j} of n={n}"
                );
            }
            t.net.validate().unwrap();
        }
    }

    #[test]
    fn tandem_interior_utilization_is_4rho() {
        let t = tandem(4, int(1), rat(1, 8), TandemOptions::default());
        assert_eq!(t.net.utilization(t.middle[2]), rat(1, 2));
        assert_eq!(t.net.max_utilization(), rat(1, 2));
    }

    #[test]
    fn tandem_with_exit_ports_validates() {
        let t = tandem(
            3,
            int(1),
            rat(1, 8),
            TandemOptions {
                include_exit_ports: true,
                ..TandemOptions::default()
            },
        );
        t.net.validate().unwrap();
        // Exit ports carry exactly one flow each.
        let n_servers = t.net.servers().len();
        assert_eq!(n_servers, 3 + 6);
    }

    #[test]
    fn chain_builder() {
        let specs = vec![
            TrafficSpec::paper_source(int(1), rat(1, 4)),
            TrafficSpec::paper_source(int(2), rat(1, 4)),
        ];
        let (net, flows, servers) = chain(3, &specs);
        assert_eq!(flows.len(), 2);
        assert_eq!(servers.len(), 3);
        net.validate().unwrap();
        assert_eq!(net.flow(flows[0]).route, servers);
    }

    #[test]
    fn two_server_builder() {
        let sp = |s: i64| TrafficSpec::paper_source(int(s), rat(1, 8));
        let (net, a, b, f12, f1, f2) =
            two_server(int(1), int(1), &[sp(1), sp(2)], &[sp(1)], &[sp(3)]);
        assert_eq!(net.flows_through(a).len(), 3);
        assert_eq!(net.flows_through(b).len(), 3);
        assert_eq!((f12.len(), f1.len(), f2.len()), (2, 1, 1));
        net.validate().unwrap();
    }

    #[test]
    fn ring_builder_is_cyclic() {
        let spec = TrafficSpec::paper_source(int(1), rat(1, 8));
        let (net, flows, servers) = ring(4, 2, &spec);
        assert_eq!(flows.len(), 4);
        assert_eq!(servers.len(), 4);
        assert!(net.topological_order().is_err(), "2-hop ring must cycle");
        let (net1, _, _) = ring(4, 1, &spec);
        assert!(
            net1.topological_order().is_ok(),
            "1-hop ring is trivially acyclic"
        );
    }

    #[test]
    fn random_feedforward_is_valid() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let net = random_feedforward(&mut rng, 6, 10, 4, rat(3, 4), true);
            net.validate().unwrap();
            assert!(net.max_utilization() <= rat(3, 4));
        }
    }
}
