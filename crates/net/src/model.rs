//! Core network model: servers, flows, routes, and feedforward checks.

use dnc_num::Rat;
use dnc_traffic::TrafficSpec;
use std::collections::VecDeque;
use std::fmt;

/// Index of a server within its [`Network`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServerId(pub usize);

/// Index of a flow (connection) within its [`Network`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub usize);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Packet scheduling discipline of a server.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Discipline {
    /// First-in first-out over all flows (the paper's focus).
    Fifo,
    /// Static priority: lower [`Flow::priority`] values served first,
    /// FIFO within a priority level (the paper's announced extension).
    StaticPriority,
    /// Generalized processor sharing (idealized fair queueing): each flow
    /// is guaranteed its reserved rate (see [`Network::reserve`]); unused
    /// capacity is redistributed proportionally. The paper's example of a
    /// *guaranteed-rate* discipline, for which the service-curve method
    /// is the right tool.
    Gps,
    /// Earliest-deadline-first: every cell carries `arrival + local
    /// deadline` (see [`Network::set_local_deadline`]) and the smallest
    /// deadline is served first. Another discipline from the paper's
    /// introduction; analyzed with the classical demand-bound
    /// schedulability test.
    Edf,
}

/// A work-conserving server (one switch output port).
#[derive(Clone, Debug)]
pub struct Server {
    /// Human-readable label (used in reports and traces).
    pub name: String,
    /// Service rate, in cells per tick.
    pub rate: Rat,
    /// Scheduling discipline.
    pub discipline: Discipline,
}

impl Server {
    /// A unit-rate FIFO server (the paper's evaluation setting).
    pub fn unit_fifo(name: impl Into<String>) -> Server {
        Server {
            name: name.into(),
            rate: Rat::ONE,
            discipline: Discipline::Fifo,
        }
    }
}

/// A connection: an entry traffic constraint plus a route.
#[derive(Clone, Debug)]
pub struct Flow {
    /// Human-readable label.
    pub name: String,
    /// Entry traffic constraint (token bucket at the source).
    pub spec: TrafficSpec,
    /// The servers traversed, in order (no repeats).
    pub route: Vec<ServerId>,
    /// Priority for static-priority servers (lower = more urgent).
    pub priority: u8,
}

/// Structural errors raised by [`Network`] construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// A route references a server id that does not exist.
    UnknownServer(ServerId),
    /// An operation references a flow id that does not exist.
    UnknownFlow(FlowId),
    /// A route is empty or visits a server twice.
    BadRoute(String),
    /// The server precedence graph has a cycle (not feedforward).
    NotFeedforward,
    /// A server's long-term load meets or exceeds its rate.
    Overloaded {
        /// The saturated server.
        server: ServerId,
        /// The server's declared name.
        name: String,
        /// Sum of sustained flow rates.
        load: String,
        /// Service rate.
        rate: String,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::UnknownServer(s) => write!(f, "route references unknown server {s}"),
            NetworkError::UnknownFlow(id) => write!(f, "operation references unknown flow {id}"),
            NetworkError::BadRoute(m) => write!(f, "bad route: {m}"),
            NetworkError::NotFeedforward => write!(f, "network is not feedforward (cycle)"),
            NetworkError::Overloaded {
                server,
                name,
                load,
                rate,
            } => {
                write!(
                    f,
                    "server {name:?} ({server}) overloaded: load {load} >= rate {rate}"
                )
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// A feedforward network of servers and flows.
#[derive(Clone, Debug, Default)]
pub struct Network {
    servers: Vec<Server>,
    flows: Vec<Flow>,
    /// Explicit GPS rate reservations, `(flow, server) -> rate`.
    reservations: Vec<((FlowId, ServerId), Rat)>,
    /// EDF local deadlines, `(flow, server) -> deadline`.
    local_deadlines: Vec<((FlowId, ServerId), Rat)>,
}

impl Network {
    /// An empty network.
    pub fn new() -> Network {
        Network::default()
    }

    /// Add a server, returning its id.
    pub fn add_server(&mut self, server: Server) -> ServerId {
        self.servers.push(server);
        ServerId(self.servers.len() - 1)
    }

    /// Add a flow, returning its id.
    ///
    /// # Errors
    /// Rejects empty routes, repeated servers, and unknown server ids.
    pub fn add_flow(&mut self, flow: Flow) -> Result<FlowId, NetworkError> {
        if flow.route.is_empty() {
            return Err(NetworkError::BadRoute(format!(
                "flow {:?} has an empty route",
                flow.name
            )));
        }
        for &s in &flow.route {
            if s.0 >= self.servers.len() {
                return Err(NetworkError::UnknownServer(s));
            }
        }
        let mut seen = vec![false; self.servers.len()];
        for &s in &flow.route {
            // audit: allow(index, ServerId/FlowId are indices this Network handed out; tables are sized to its server/flow counts)
            if seen[s.0] {
                return Err(NetworkError::BadRoute(format!(
                    "flow {:?} visits {s} twice",
                    flow.name
                )));
            }
            seen[s.0] = true; // audit: allow(index, ServerId/FlowId are indices this Network handed out; tables are sized to its server/flow counts)
        }
        self.flows.push(flow);
        Ok(FlowId(self.flows.len() - 1))
    }

    /// Remove a flow, returning it. Every flow with a larger id shifts
    /// down by one (ids are dense indices), as do their reservation and
    /// local-deadline entries — callers holding `FlowId`s above `id`
    /// must renumber. The churn engine relies on this for releases.
    ///
    /// # Errors
    /// [`NetworkError::UnknownFlow`] when `id` is out of range.
    pub fn remove_flow(&mut self, id: FlowId) -> Result<Flow, NetworkError> {
        if id.0 >= self.flows.len() {
            return Err(NetworkError::UnknownFlow(id));
        }
        let flow = self.flows.remove(id.0);
        let shift = |entries: &mut Vec<((FlowId, ServerId), Rat)>| {
            entries.retain(|((f, _), _)| *f != id);
            for ((f, _), _) in entries.iter_mut() {
                if f.0 > id.0 {
                    f.0 -= 1;
                }
            }
        };
        shift(&mut self.reservations);
        shift(&mut self.local_deadlines);
        Ok(flow)
    }

    /// All servers.
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// All flows.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Look up a server.
    pub fn server(&self, id: ServerId) -> &Server {
        &self.servers[id.0] // audit: allow(index, ServerId/FlowId are indices this Network handed out; tables are sized to its server/flow counts)
    }

    /// Look up a flow.
    pub fn flow(&self, id: FlowId) -> &Flow {
        &self.flows[id.0] // audit: allow(index, ServerId/FlowId are indices this Network handed out; tables are sized to its server/flow counts)
    }

    /// Reserve a GPS service rate for `flow` at `server`. Overwrites any
    /// previous reservation for the pair. Only meaningful at
    /// [`Discipline::Gps`] servers.
    pub fn reserve(&mut self, flow: FlowId, server: ServerId, rate: Rat) {
        assert!(rate.is_positive(), "reservation must be positive");
        if let Some(slot) = self
            .reservations
            .iter_mut()
            .find(|(k, _)| *k == (flow, server))
        {
            slot.1 = rate;
        } else {
            self.reservations.push(((flow, server), rate));
        }
    }

    /// The GPS rate guaranteed to `flow` at `server`: the explicit
    /// reservation if present, otherwise the flow's sustained rate (the
    /// natural default — reserve what you send).
    pub fn reserved_rate(&self, flow: FlowId, server: ServerId) -> Rat {
        self.reservations
            .iter()
            .find(|(k, _)| *k == (flow, server))
            .map(|(_, r)| *r)
            .unwrap_or_else(|| self.flow(flow).spec.sustained_rate())
    }

    /// Assign an EDF local deadline for `flow` at `server` (ticks).
    /// Required for every flow crossing an [`Discipline::Edf`] server.
    pub fn set_local_deadline(&mut self, flow: FlowId, server: ServerId, deadline: Rat) {
        assert!(deadline.is_positive(), "local deadline must be positive");
        if let Some(slot) = self
            .local_deadlines
            .iter_mut()
            .find(|(k, _)| *k == (flow, server))
        {
            slot.1 = deadline;
        } else {
            self.local_deadlines.push(((flow, server), deadline));
        }
    }

    /// The EDF local deadline of `flow` at `server`, if assigned.
    pub fn local_deadline(&self, flow: FlowId, server: ServerId) -> Option<Rat> {
        self.local_deadlines
            .iter()
            .find(|(k, _)| *k == (flow, server))
            .map(|(_, d)| *d)
    }

    /// Ids of all flows whose route includes `server`.
    pub fn flows_through(&self, server: ServerId) -> Vec<FlowId> {
        (0..self.flows.len())
            .filter(|&i| self.flows[i].route.contains(&server)) // audit: allow(index, ServerId/FlowId are indices this Network handed out; tables are sized to its server/flow counts)
            .map(FlowId)
            .collect()
    }

    /// Position of `server` in `flow`'s route, if visited.
    pub fn hop_index(&self, flow: FlowId, server: ServerId) -> Option<usize> {
        self.flow(flow).route.iter().position(|&s| s == server)
    }

    /// The server a flow visits immediately before `server`, if any.
    pub fn previous_hop(&self, flow: FlowId, server: ServerId) -> Option<ServerId> {
        let idx = self.hop_index(flow, server)?;
        if idx == 0 {
            None
        } else {
            Some(self.flow(flow).route[idx - 1]) // audit: allow(index, ServerId/FlowId are indices this Network handed out; tables are sized to its server/flow counts)
        }
    }

    /// Directed precedence edges `a → b` (some flow visits `a` immediately
    /// before `b`), deduplicated.
    pub fn precedence_edges(&self) -> Vec<(ServerId, ServerId)> {
        let mut edges: Vec<(ServerId, ServerId)> = self
            .flows
            .iter()
            .flat_map(|f| f.route.windows(2).map(|w| (w[0], w[1]))) // audit: allow(index, ServerId/FlowId are indices this Network handed out; tables are sized to its server/flow counts)
            .collect();
        edges.sort();
        edges.dedup();
        edges
    }

    /// Topological order of the servers under precedence, or
    /// [`NetworkError::NotFeedforward`] if the precedence graph has a cycle.
    pub fn topological_order(&self) -> Result<Vec<ServerId>, NetworkError> {
        let n = self.servers.len();
        let mut indeg = vec![0usize; n];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (a, b) in self.precedence_edges() {
            adj[a.0].push(b.0); // audit: allow(index, ServerId/FlowId are indices this Network handed out; tables are sized to its server/flow counts)
            indeg[b.0] += 1; // audit: allow(index, ServerId/FlowId are indices this Network handed out; tables are sized to its server/flow counts)
        }
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect(); // audit: allow(index, ServerId/FlowId are indices this Network handed out; tables are sized to its server/flow counts)
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop_front() {
            order.push(ServerId(u));
            // audit: allow(index, ServerId/FlowId are indices this Network handed out; tables are sized to its server/flow counts)
            for &v in &adj[u] {
                // audit: allow(index, ServerId/FlowId are indices this Network handed out; tables are sized to its server/flow counts)
                indeg[v] -= 1;
                // audit: allow(index, ServerId/FlowId are indices this Network handed out; tables are sized to its server/flow counts)
                if indeg[v] == 0 {
                    queue.push_back(v);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(NetworkError::NotFeedforward)
        }
    }

    /// Long-term load offered to a server (sum of sustained flow rates).
    pub fn load(&self, server: ServerId) -> Rat {
        self.flows_through(server)
            .into_iter()
            .map(|f| self.flow(f).spec.sustained_rate())
            .sum()
    }

    /// Utilization `load / rate` of a server.
    pub fn utilization(&self, server: ServerId) -> Rat {
        self.load(server) / self.server(server).rate
    }

    /// The maximum utilization over all servers.
    pub fn max_utilization(&self) -> Rat {
        (0..self.servers.len())
            .map(|i| self.utilization(ServerId(i)))
            .max()
            .unwrap_or(Rat::ZERO)
    }

    /// Full structural validation: feedforward and every server strictly
    /// under-loaded (`load < rate`), the standing assumptions of all three
    /// analysis algorithms.
    pub fn validate(&self) -> Result<(), NetworkError> {
        self.topological_order()?;
        for i in 0..self.servers.len() {
            let id = ServerId(i);
            let load = self.load(id);
            let rate = self.server(id).rate;
            if load >= rate {
                return Err(NetworkError::Overloaded {
                    server: id,
                    name: self.server(id).name.clone(),
                    load: load.to_string(),
                    rate: rate.to_string(),
                });
            }
            // EDF configuration: every crossing flow needs a deadline.
            if self.server(id).discipline == Discipline::Edf {
                for f in self.flows_through(id) {
                    if self.local_deadline(f, id).is_none() {
                        return Err(NetworkError::BadRoute(format!(
                            "flow {f} crosses EDF server {id} without a local deadline"
                        )));
                    }
                }
            }
            // GPS admission: the reservations themselves must fit, and
            // every flow must reserve at least its sustained rate (or its
            // bound diverges).
            if self.server(id).discipline == Discipline::Gps {
                let total: Rat = self
                    .flows_through(id)
                    .into_iter()
                    .map(|f| self.reserved_rate(f, id))
                    .sum();
                if total > rate {
                    return Err(NetworkError::Overloaded {
                        server: id,
                        name: self.server(id).name.clone(),
                        load: total.to_string(),
                        rate: rate.to_string(),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnc_num::{int, rat};

    fn spec() -> TrafficSpec {
        TrafficSpec::paper_source(int(1), rat(1, 4))
    }

    fn flow(name: &str, route: Vec<ServerId>) -> Flow {
        Flow {
            name: name.into(),
            spec: spec(),
            route,
            priority: 0,
        }
    }

    #[test]
    fn add_and_query() {
        let mut net = Network::new();
        let a = net.add_server(Server::unit_fifo("a"));
        let b = net.add_server(Server::unit_fifo("b"));
        let f = net.add_flow(flow("f", vec![a, b])).unwrap();
        assert_eq!(net.flows_through(a), vec![f]);
        assert_eq!(net.hop_index(f, b), Some(1));
        assert_eq!(net.previous_hop(f, b), Some(a));
        assert_eq!(net.previous_hop(f, a), None);
    }

    #[test]
    fn rejects_bad_routes() {
        let mut net = Network::new();
        let a = net.add_server(Server::unit_fifo("a"));
        assert!(matches!(
            net.add_flow(flow("empty", vec![])),
            Err(NetworkError::BadRoute(_))
        ));
        assert!(matches!(
            net.add_flow(flow("dup", vec![a, a])),
            Err(NetworkError::BadRoute(_))
        ));
        assert!(matches!(
            net.add_flow(flow("ghost", vec![ServerId(7)])),
            Err(NetworkError::UnknownServer(_))
        ));
    }

    #[test]
    fn remove_flow_shifts_ids_and_side_tables() {
        let mut net = Network::new();
        let a = net.add_server(Server::unit_fifo("a"));
        let b = net.add_server(Server::unit_fifo("b"));
        let f0 = net.add_flow(flow("f0", vec![a])).unwrap();
        let f1 = net.add_flow(flow("f1", vec![a, b])).unwrap();
        let f2 = net.add_flow(flow("f2", vec![b])).unwrap();
        net.reserve(f0, a, rat(1, 8));
        net.reserve(f2, b, rat(1, 16));
        net.set_local_deadline(f1, a, int(3));

        let removed = net.remove_flow(f1).unwrap();
        assert_eq!(removed.name, "f1");
        assert_eq!(net.flows().len(), 2);
        assert_eq!(net.flow(FlowId(0)).name, "f0");
        assert_eq!(net.flow(FlowId(1)).name, "f2");
        // f0's reservation survives; f1's deadline is gone; f2's
        // reservation followed the id shift.
        assert_eq!(net.reserved_rate(FlowId(0), a), rat(1, 8));
        assert_eq!(net.local_deadline(FlowId(0), a), None);
        assert_eq!(net.reserved_rate(FlowId(1), b), rat(1, 16));
        assert!(matches!(
            net.remove_flow(FlowId(9)),
            Err(NetworkError::UnknownFlow(FlowId(9)))
        ));
    }

    #[test]
    fn topological_order_chain() {
        let mut net = Network::new();
        let a = net.add_server(Server::unit_fifo("a"));
        let b = net.add_server(Server::unit_fifo("b"));
        let c = net.add_server(Server::unit_fifo("c"));
        net.add_flow(flow("f", vec![a, b, c])).unwrap();
        let order = net.topological_order().unwrap();
        let pos = |s: ServerId| order.iter().position(|&x| x == s).unwrap();
        assert!(pos(a) < pos(b) && pos(b) < pos(c));
    }

    #[test]
    fn detects_cycle() {
        let mut net = Network::new();
        let a = net.add_server(Server::unit_fifo("a"));
        let b = net.add_server(Server::unit_fifo("b"));
        net.add_flow(flow("f1", vec![a, b])).unwrap();
        net.add_flow(flow("f2", vec![b, a])).unwrap();
        assert_eq!(net.topological_order(), Err(NetworkError::NotFeedforward));
    }

    #[test]
    fn utilization_and_overload() {
        let mut net = Network::new();
        let a = net.add_server(Server::unit_fifo("a"));
        for i in 0..3 {
            net.add_flow(flow(&format!("f{i}"), vec![a])).unwrap();
        }
        assert_eq!(net.utilization(a), rat(3, 4));
        assert!(net.validate().is_ok());
        net.add_flow(flow("f3", vec![a])).unwrap();
        assert!(matches!(
            net.validate(),
            Err(NetworkError::Overloaded { .. })
        ));
    }
}
